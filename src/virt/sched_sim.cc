#include "virt/sched_sim.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace vsnoop
{

SchedulerSim::SchedulerSim(const SchedConfig &config,
                           const SchedProfile &profile,
                           std::uint32_t num_vms,
                           std::uint32_t vcpus_per_vm)
    : config_(config), profile_(profile), numVms_(num_vms),
      vcpusPerVm_(vcpus_per_vm), cores_(config.numCores),
      rng_(config.seed, 0x5c4edu)
{
}

bool
SchedulerSim::canRun(const VcpuState &v) const
{
    return v.runnable && !v.done && !v.atBarrier;
}

void
SchedulerSim::vacate(VCpuId v)
{
    VcpuState &vcpu = vcpus_[v];
    if (vcpu.core == kInvalidCore)
        return;
    cores_[vcpu.core].vcpu = kInvalidVCpu;
    vcpu.core = kInvalidCore;
    if (config_.recordTrace)
        trace_.push_back({nowMs_, v, kInvalidCore});
}

void
SchedulerSim::placeOn(VCpuId v, CoreId c, double now)
{
    VcpuState &vcpu = vcpus_[v];
    vsnoop_assert(vcpu.core == kInvalidCore, "vCPU already placed");
    vsnoop_assert(cores_[c].vcpu == kInvalidVCpu, "core occupied");
    vcpu.core = c;
    cores_[c].vcpu = v;
    vcpu.justWoke = false;
    vcpu.sliceEndMs = now + config_.sliceMs;
    if (vcpu.lastCore != kInvalidCore && vcpu.lastCore != c) {
        vcpu.mappingChanges++;
        vcpu.coldUntilMs = now + config_.migrationColdMs;
    }
    vcpu.lastCore = c;
    if (config_.recordTrace)
        trace_.push_back({now, v, c});
}

SchedResult
SchedulerSim::run()
{
    // Build the vCPU population.
    vcpus_.clear();
    for (std::uint32_t vm = 0; vm < numVms_; ++vm) {
        for (std::uint32_t i = 0; i < vcpusPerVm_; ++i) {
            VcpuState v;
            v.vm = static_cast<VmId>(vm);
            v.runnable = true;
            v.nextToggleMs =
                profile_.meanRunMs > 0
                    ? profile_.meanRunMs * -std::log(1.0 - rng_.uniform())
                    : config_.maxSimMs;
            v.creditMs = config_.sliceMs;
            if (config_.pinned) {
                v.pinnedCore = static_cast<CoreId>(
                    vcpus_.size() % config_.numCores);
            }
            vcpus_.push_back(v);
        }
    }

    SchedResult result;
    result.vmFinishMs.assign(numVms_, 0.0);
    std::vector<std::uint32_t> vmRemaining(numVms_, vcpusPerVm_);

    double now = 0.0;
    double next_accounting = config_.accountingMs;
    std::uint32_t vms_done = 0;
    double step = config_.stepMs;
    // Total dom0 wakeup rate scales with the number of VMs doing
    // I/O, converted to a per-step probability.
    double dom0_prob =
        profile_.dom0WakeupsPerSec * numVms_ * step / 1000.0;

    auto exp_draw = [&](double mean) {
        double u = rng_.uniform();
        if (u >= 1.0)
            u = 0.999999;
        return mean * -std::log(1.0 - u);
    };

    while (vms_done < numVms_ && now < config_.maxSimMs) {
        now += step;
        nowMs_ = now;

        // Credit accounting.
        if (now >= next_accounting) {
            next_accounting += config_.accountingMs;
            std::uint32_t active = 0;
            for (const auto &v : vcpus_) {
                if (!v.done)
                    active++;
            }
            if (active > 0) {
                double fair = config_.accountingMs * config_.numCores /
                              static_cast<double>(active);
                for (auto &v : vcpus_) {
                    if (!v.done) {
                        v.creditMs = std::min(v.creditMs + fair,
                                              2.0 * config_.sliceMs);
                    }
                }
            }
        }

        // domain0 bursts: short I/O-handling work that grabs (and
        // if necessary preempts) a random core.  domain0 runs with
        // boosted priority in Xen.
        if (dom0_prob > 0 && rng_.chance(std::min(dom0_prob, 1.0))) {
            auto c = static_cast<CoreId>(rng_.below(config_.numCores));
            if (cores_[c].vcpu != kInvalidVCpu)
                vacate(cores_[c].vcpu);
            cores_[c].dom0UntilMs =
                std::max(cores_[c].dom0UntilMs, now) +
                profile_.dom0BurstMs;
        }

        // Runnable/blocked phase transitions.
        for (VCpuId i = 0; i < vcpus_.size(); ++i) {
            VcpuState &v = vcpus_[i];
            if (v.done || now < v.nextToggleMs)
                continue;
            v.runnable = !v.runnable;
            v.nextToggleMs = now + exp_draw(v.runnable
                                                ? profile_.meanRunMs
                                                : profile_.meanBlockMs);
            if (!v.runnable && v.core != kInvalidCore)
                vacate(i);
            if (v.runnable)
                v.justWoke = true;
        }

        // Count how many waiting vCPUs could use a core, for the
        // preempt-on-contention decisions below.
        std::uint32_t waiting_with_credit = 0;
        for (VCpuId i = 0; i < vcpus_.size(); ++i) {
            const VcpuState &v = vcpus_[i];
            if (canRun(v) && v.core == kInvalidCore && v.creditMs > 0)
                waiting_with_credit++;
        }

        // Execute one step on each core.
        for (CoreId c = 0; c < cores_.size(); ++c) {
            CoreState &core = cores_[c];
            if (core.dom0UntilMs > now) {
                if (core.vcpu != kInvalidVCpu)
                    vacate(core.vcpu);
                continue;
            }
            if (core.vcpu == kInvalidVCpu)
                continue;
            VCpuId vid = core.vcpu;
            VcpuState &v = vcpus_[vid];
            if (!canRun(v)) {
                vacate(vid);
                continue;
            }
            bool contended = waiting_with_credit > 0;
            if (contended &&
                (now >= v.sliceEndMs || v.creditMs <= 0)) {
                vacate(vid);
                continue;
            }
            double speed =
                now < v.coldUntilMs ? config_.coldSpeed : 1.0;
            v.workDoneMs += step * speed;
            v.phaseWorkMs += step * speed;
            v.creditMs -= step;
            core.busyMs += step;
            if (v.workDoneMs >= profile_.workMsPerVcpu) {
                v.done = true;
                vacate(vid);
                VmId vm = v.vm;
                if (--vmRemaining[vm] == 0) {
                    result.vmFinishMs[vm] = now;
                    vms_done++;
                }
            } else if (profile_.phaseWorkMs > 0 &&
                       v.phaseWorkMs >= profile_.phaseWorkMs) {
                // Parallel phase complete: park at the barrier
                // until the VM's siblings arrive.
                v.atBarrier = true;
                v.phaseWorkMs = 0.0;
                vacate(vid);
            }
        }

        // Barrier release: once every live vCPU of a VM has
        // arrived, the whole gang wakes (an event-driven wake).
        if (profile_.phaseWorkMs > 0) {
            for (VmId vm = 0; vm < numVms_; ++vm) {
                bool all_arrived = vmRemaining[vm] > 0;
                for (const auto &v : vcpus_) {
                    if (v.vm == vm && !v.done && !v.atBarrier) {
                        all_arrived = false;
                        break;
                    }
                }
                if (!all_arrived)
                    continue;
                for (auto &v : vcpus_) {
                    if (v.vm == vm && !v.done) {
                        v.atBarrier = false;
                        v.justWoke = true;
                    }
                }
            }
        }

        // Dispatch waiting vCPUs onto idle cores.
        if (config_.pinned) {
            for (CoreId c = 0; c < cores_.size(); ++c) {
                if (cores_[c].dom0UntilMs > now ||
                    cores_[c].vcpu != kInvalidVCpu) {
                    continue;
                }
                // Choose the pinned waiting vCPU with most credits.
                VCpuId best = kInvalidVCpu;
                for (VCpuId i = 0; i < vcpus_.size(); ++i) {
                    const VcpuState &v = vcpus_[i];
                    if (v.pinnedCore != c || !canRun(v) ||
                        v.core != kInvalidCore) {
                        continue;
                    }
                    if (best == kInvalidVCpu ||
                        v.creditMs > vcpus_[best].creditMs) {
                        best = i;
                    }
                }
                if (best != kInvalidVCpu)
                    placeOn(best, c, now);
            }
        } else {
            // Full-migration dispatch: waiting vCPUs (most credits
            // first, Xen's UNDER priority) grab free cores.  A
            // waking vCPU prefers its previous core unless the
            // event-driven wake placement sends it elsewhere.
            std::vector<CoreId> free_cores;
            for (CoreId c = 0; c < cores_.size(); ++c) {
                if (cores_[c].dom0UntilMs <= now &&
                    cores_[c].vcpu == kInvalidVCpu) {
                    free_cores.push_back(c);
                }
            }
            std::vector<VCpuId> waiting;
            for (VCpuId i = 0; i < vcpus_.size(); ++i) {
                const VcpuState &v = vcpus_[i];
                if (canRun(v) && v.core == kInvalidCore)
                    waiting.push_back(i);
            }
            std::sort(waiting.begin(), waiting.end(),
                      [&](VCpuId a, VCpuId b) {
                          return vcpus_[a].creditMs > vcpus_[b].creditMs;
                      });
            for (VCpuId vid : waiting) {
                VcpuState &v = vcpus_[vid];
                if (!free_cores.empty()) {
                    auto last_it =
                        std::find(free_cores.begin(), free_cores.end(),
                                  v.lastCore);
                    std::size_t pick_idx;
                    // Event-driven wake placement can land anywhere;
                    // a vCPU merely descheduled (slice expiry, dom0
                    // displacement) returns to its previous core
                    // when that core is free.
                    bool stray = v.justWoke &&
                                 rng_.chance(profile_.wakeMigrateProb);
                    if (last_it != free_cores.end() && !stray) {
                        pick_idx = static_cast<std::size_t>(
                            last_it - free_cores.begin());
                    } else {
                        pick_idx = rng_.below(static_cast<std::uint32_t>(
                            free_cores.size()));
                    }
                    CoreId target = free_cores[pick_idx];
                    free_cores.erase(
                        free_cores.begin() +
                        static_cast<std::ptrdiff_t>(pick_idx));
                    placeOn(vid, target, now);
                    continue;
                }
                // No core is free: Xen's BOOST behaviour lets a
                // freshly runnable vCPU with credits preempt a
                // running vCPU that is deeper into its credits.
                if (v.creditMs <= 0)
                    continue;
                CoreId victim_core = kInvalidCore;
                double victim_credit = v.creditMs - config_.sliceMs / 3;
                for (CoreId c = 0; c < cores_.size(); ++c) {
                    if (cores_[c].dom0UntilMs > now ||
                        cores_[c].vcpu == kInvalidVCpu) {
                        continue;
                    }
                    double running_credit =
                        vcpus_[cores_[c].vcpu].creditMs;
                    if (running_credit < victim_credit) {
                        victim_credit = running_credit;
                        victim_core = c;
                    }
                }
                if (victim_core != kInvalidCore) {
                    vacate(cores_[victim_core].vcpu);
                    placeOn(vid, victim_core, now);
                }
            }
        }
    }

    result.timedOut = vms_done < numVms_;
    result.makespanMs = now;
    double busy = 0.0;
    for (const auto &core : cores_)
        busy += core.busyMs;
    result.coreUtilization =
        now > 0 ? busy / (config_.numCores * now) : 0.0;

    std::uint64_t changes = 0;
    double vcpu_time = 0.0;
    for (const auto &v : vcpus_) {
        changes += v.mappingChanges;
        double finish =
            v.done ? result.vmFinishMs[v.vm] : now;
        if (finish <= 0)
            finish = now;
        vcpu_time += finish;
    }
    result.migrations = changes;
    result.avgRelocationPeriodMs =
        changes > 0 ? vcpu_time / static_cast<double>(changes)
                    : vcpu_time;
    result.trace = std::move(trace_);
    return result;
}

} // namespace vsnoop
