/**
 * @file
 * Per-VM guest-physical to host-physical page table.
 *
 * The hypervisor maintains one of these per VM (the paper's nested /
 * shadow mapping table, Section II-A).  Each entry carries the page
 * sharing type in what would be two unused PTE bits (Section IV-A);
 * the TLB model simply reads the type out of the entry on every
 * translation.
 */

#ifndef VSNOOP_VIRT_PAGE_TABLE_HH_
#define VSNOOP_VIRT_PAGE_TABLE_HH_

#include <cstdint>
#include <functional>
#include <optional>

#include "mem/addr.hh"
#include "sim/flat_table.hh"

namespace vsnoop
{

/**
 * One page-table entry.
 */
struct PageTableEntry
{
    /** Host-physical page number. */
    std::uint64_t hostPage = 0;
    /** Sharing type (the two extra PTE bits). */
    PageType type = PageType::VmPrivate;
};

/**
 * Guest-physical to host-physical mapping for one VM.
 */
class PageTable
{
  public:
    /** Look up a guest page; nullopt when unmapped. */
    std::optional<PageTableEntry> lookup(std::uint64_t guest_page) const;

    /** Install or replace a mapping.  Only the hypervisor calls this. */
    void map(std::uint64_t guest_page, std::uint64_t host_page,
             PageType type);

    /** Change only the sharing type of an existing mapping. */
    void setType(std::uint64_t guest_page, PageType type);

    /** Remove a mapping. */
    void unmap(std::uint64_t guest_page);

    /** Number of mapped pages. */
    std::size_t size() const { return entries_.size(); }

    /** Visit every (guest_page, entry) pair in ascending guest-page
     *  order (deterministic regardless of table capacity). */
    void forEach(const std::function<void(std::uint64_t,
                                          const PageTableEntry &)> &fn) const;

    /**
     * Mapping generation: incremented on every map/setType/unmap.
     * TLB-style consumers may cache translations and revalidate
     * against this, mirroring a TLB shootdown.
     */
    std::uint64_t generation() const { return generation_; }

  private:
    /**
     * Flat open-addressed table: the TLB model does one lookup per
     * memory access, so the translation walk is a hot path (see
     * sim/flat_table.hh).
     */
    FlatMap<PageTableEntry> entries_;
    std::uint64_t generation_ = 0;
};

} // namespace vsnoop

#endif // VSNOOP_VIRT_PAGE_TABLE_HH_
