#include "virt/vcpu_map.hh"

#include "sim/logging.hh"

namespace vsnoop
{

VcpuMapping::VcpuMapping(std::uint32_t num_cores)
    : vcpuAt_(num_cores, kInvalidVCpu), vmAtCore_(num_cores, kInvalidVm)
{
    vsnoop_assert(num_cores >= 1, "need at least one core");
}

VCpuId
VcpuMapping::addVcpu(VmId vm)
{
    auto id = static_cast<VCpuId>(vmOf_.size());
    vmOf_.push_back(vm);
    coreOf_.push_back(kInvalidCore);
    return id;
}

void
VcpuMapping::place(VCpuId vcpu, CoreId core)
{
    vsnoop_assert(vcpu < vmOf_.size(), "bad vCPU id ", vcpu);
    vsnoop_assert(core < vcpuAt_.size(), "bad core id ", core);
    vsnoop_assert(coreOf_[vcpu] == kInvalidCore,
                  "vCPU ", vcpu, " is already placed");
    vsnoop_assert(vcpuAt_[core] == kInvalidVCpu,
                  "core ", core, " is occupied");
    coreOf_[vcpu] = core;
    vcpuAt_[core] = vcpu;
    vmAtCore_[core] = vmOf_[vcpu];
    for (auto *l : listeners_)
        l->onVcpuPlaced(vcpu, vmOf_[vcpu], core);
}

void
VcpuMapping::removeFromCore(VCpuId vcpu)
{
    vsnoop_assert(vcpu < vmOf_.size(), "bad vCPU id ", vcpu);
    CoreId core = coreOf_[vcpu];
    if (core == kInvalidCore)
        return;
    coreOf_[vcpu] = kInvalidCore;
    vcpuAt_[core] = kInvalidVCpu;
    vmAtCore_[core] = kInvalidVm;
    for (auto *l : listeners_)
        l->onVcpuRemoved(vcpu, vmOf_[vcpu], core);
}

void
VcpuMapping::swap(VCpuId a, VCpuId b)
{
    CoreId core_a = coreOf(a);
    CoreId core_b = coreOf(b);
    vsnoop_assert(core_a != kInvalidCore && core_b != kInvalidCore,
                  "swap requires both vCPUs to be placed");
    removeFromCore(a);
    removeFromCore(b);
    place(a, core_b);
    place(b, core_a);
}

CoreId
VcpuMapping::coreOf(VCpuId vcpu) const
{
    vsnoop_assert(vcpu < vmOf_.size(), "bad vCPU id ", vcpu);
    return coreOf_[vcpu];
}

VCpuId
VcpuMapping::vcpuAt(CoreId core) const
{
    vsnoop_assert(core < vcpuAt_.size(), "bad core id ", core);
    return vcpuAt_[core];
}

VmId
VcpuMapping::vmOf(VCpuId vcpu) const
{
    vsnoop_assert(vcpu < vmOf_.size(), "bad vCPU id ", vcpu);
    return vmOf_[vcpu];
}

VmId
VcpuMapping::vmAt(CoreId core) const
{
    vsnoop_assert(core < vmAtCore_.size(), "bad core id ", core);
    return vmAtCore_[core];
}

CoreSet
VcpuMapping::coresRunning(VmId vm) const
{
    CoreSet set;
    for (CoreId c = 0; c < vcpuAt_.size(); ++c) {
        if (vmAt(c) == vm)
            set.add(c);
    }
    return set;
}

void
VcpuMapping::addListener(VcpuMappingListener *listener)
{
    listeners_.push_back(listener);
}

ShuffleMigrator::ShuffleMigrator(EventQueue &eq, VcpuMapping &mapping,
                                 Tick period, std::uint64_t seed)
    : eq_(eq), mapping_(mapping), period_(period), rng_(seed, 0x5c4d)
{
    vsnoop_assert(period >= 1, "shuffle period must be positive");
}

void
ShuffleMigrator::start()
{
    eq_.scheduleIn(*this, period_);
}

void
ShuffleMigrator::stop()
{
    eq_.deschedule(*this);
}

void
ShuffleMigrator::process()
{
    std::uint32_t n = mapping_.numVcpus();
    if (n >= 2) {
        // Draw two placed vCPUs from different VMs; bail out after
        // a bounded number of tries (e.g. only one VM is placed).
        for (int tries = 0; tries < 64; ++tries) {
            auto a = static_cast<VCpuId>(rng_.below(n));
            auto b = static_cast<VCpuId>(rng_.below(n));
            if (a == b || mapping_.vmOf(a) == mapping_.vmOf(b))
                continue;
            if (mapping_.coreOf(a) == kInvalidCore ||
                mapping_.coreOf(b) == kInvalidCore) {
                continue;
            }
            mapping_.swap(a, b);
            migrations.inc();
            break;
        }
    }
    eq_.scheduleIn(*this, period_);
}

TraceMigrator::TraceMigrator(EventQueue &eq, VcpuMapping &mapping,
                             std::vector<PlacementEvent> trace,
                             double ticks_per_ms)
    : eq_(eq), mapping_(mapping), trace_(std::move(trace)),
      ticksPerMs_(ticks_per_ms),
      lastCore_(mapping.numVcpus(), kInvalidCore)
{
    vsnoop_assert(ticks_per_ms > 0, "trace time scale must be positive");
}

Tick
TraceMigrator::eventTick(std::size_t index) const
{
    return static_cast<Tick>(trace_[index].timeMs * ticksPerMs_);
}

void
TraceMigrator::applyDue(Tick now)
{
    applyEventsDue(now);
    if (!finished())
        return;
    // End of trace: re-place any vCPU the trace left descheduled
    // (e.g. blocked at the recording's end), so the coherence run
    // can always make progress.
    for (VCpuId v = 0; v < mapping_.numVcpus(); ++v) {
        if (mapping_.coreOf(v) != kInvalidCore)
            continue;
        CoreId target = lastCore_[v];
        if (target == kInvalidCore ||
            mapping_.vcpuAt(target) != kInvalidVCpu) {
            target = kInvalidCore;
            for (CoreId c = 0; c < mapping_.numCores(); ++c) {
                if (mapping_.vcpuAt(c) == kInvalidVCpu) {
                    target = c;
                    break;
                }
            }
        }
        if (target != kInvalidCore) {
            mapping_.place(v, target);
            lastCore_[v] = target;
        }
    }
}

void
TraceMigrator::applyEventsDue(Tick now)
{
    while (next_ < trace_.size() && eventTick(next_) <= now) {
        const PlacementEvent &event = trace_[next_];
        next_++;
        if (event.vcpu >= mapping_.numVcpus())
            continue; // trace from a bigger system: ignore
        if (event.core == kInvalidCore) {
            mapping_.removeFromCore(event.vcpu);
            continue;
        }
        vsnoop_assert(event.core < mapping_.numCores(),
                      "trace core ", event.core,
                      " exceeds the mapping");
        mapping_.removeFromCore(event.vcpu);
        mapping_.place(event.vcpu, event.core);
        placements.inc();
        if (lastCore_[event.vcpu] != kInvalidCore &&
            lastCore_[event.vcpu] != event.core) {
            migrations.inc();
        }
        lastCore_[event.vcpu] = event.core;
    }
}

void
TraceMigrator::start()
{
    applyDue(eq_.now());
    if (!finished())
        eq_.schedule(*this, std::max(eq_.now() + 1, eventTick(next_)));
}

void
TraceMigrator::stop()
{
    eq_.deschedule(*this);
}

void
TraceMigrator::process()
{
    applyDue(eq_.now());
    if (!finished())
        eq_.schedule(*this, std::max(eq_.now() + 1, eventTick(next_)));
}

} // namespace vsnoop
