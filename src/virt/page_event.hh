/**
 * @file
 * Page-lifecycle event interface between the hypervisor and
 * observers (trace/pagemon.hh).
 *
 * The hypervisor's mapping decisions — first-touch allocation,
 * content-scan merges, copy-on-write breaks — are exactly the
 * classification history virtual snooping's filtering argument
 * rests on (Sections IV and VI of the paper), yet they happen far
 * below the coherence layer where the aggregate counters live.
 * A PageEventListener receives one call per mapping change, behind
 * the repository's branch-on-null convention: the hypervisor holds
 * a nullable listener pointer and pays one pointer test per
 * lifecycle site when nothing is attached.
 *
 * The interface is header-only and references only mem/sim types,
 * so observers in higher layers (the trace library) can implement
 * it without creating a link cycle back into vsnoop_virt.
 */

#ifndef VSNOOP_VIRT_PAGE_EVENT_HH_
#define VSNOOP_VIRT_PAGE_EVENT_HH_

#include <cstdint>

#include "mem/addr.hh"
#include "sim/types.hh"

namespace vsnoop
{

/** What happened to a mapping. */
enum class PageEventKind : std::uint8_t
{
    /** A guest (or shared-region) page got its first host page. */
    Map,
    /** A mapping was removed. */
    Unmap,
    /** Only the sharing type changed (same host page). */
    TypeChange,
    /** A write to an RO-shared page gave the writer a fresh
     *  private copy (copy-on-write break). */
    CowBreak,
    /** The content scan relocated a mapping onto the canonical
     *  shared host page (dedup merge / relocation remap). */
    Remap,
};

/** Number of PageEventKind values. */
constexpr std::size_t kNumPageEventKinds = 5;

/**
 * One page-lifecycle event.  A flat struct holds the union of all
 * kinds' fields; unused fields keep their defaults.
 */
struct PageEvent
{
    PageEventKind kind = PageEventKind::Map;
    /** Owning VM (shared-region pages are attributed to the VM, or
     *  the lower-numbered VM for inter-VM channels). */
    VmId vm = kInvalidVm;
    /** Guest page number, or the region page index for pages
     *  outside any guest page table. */
    std::uint64_t guestPage = 0;
    /** Host page number after the event. */
    std::uint64_t hostPage = 0;
    /** Host page number before the event (CowBreak / Remap). */
    std::uint64_t prevHostPage = 0;
    /** Sharing type after the event. */
    PageType type = PageType::VmPrivate;
    /** Sharing type before the event (TypeChange / Remap / CowBreak). */
    PageType prevType = PageType::VmPrivate;
};

/**
 * Observer of hypervisor mapping changes.  Implementations follow
 * the one-system-per-thread contract (system/sim_system.hh): events
 * arrive on the owning simulation thread only.
 */
class PageEventListener
{
  public:
    virtual ~PageEventListener() = default;

    /** One mapping change.  Called after the tables were updated. */
    virtual void onPageEvent(const PageEvent &event) = 0;
};

} // namespace vsnoop

#endif // VSNOOP_VIRT_PAGE_EVENT_HH_
