/**
 * @file
 * Synthetic per-vCPU memory access generation.
 *
 * A VcpuWorkload produces the post-L1 (L2-level) access stream of
 * one vCPU according to its application profile: a Zipf-reused
 * private working set, a region truly shared among the VM's vCPUs,
 * a content-shared region (identical across VMs running the same
 * application, deduplicated by the hypervisor), and occasional
 * hypervisor/domain0 interactions on RW-shared pages.
 *
 * Every access is translated through the hypervisor's nested page
 * table, so the sharing type the coherence layer sees is exactly
 * what the page table says — including COW breaks when a VM writes
 * to a content-shared page.
 */

#ifndef VSNOOP_WORKLOAD_GENERATOR_HH_
#define VSNOOP_WORKLOAD_GENERATOR_HH_

#include <cstdint>

#include "coherence/protocol.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "virt/hypervisor.hh"
#include "workload/app_profile.hh"

namespace vsnoop
{

/** Guest-page layout of the synthetic address space. */
constexpr std::uint64_t kPrivateBase = 0x100000;
constexpr std::uint64_t kVmSharedBase = 0x200000;
constexpr std::uint64_t kContentBase = 0x300000;

/** Classification of a generated access, for Table V / Figure 1. */
enum class AccessCategory : std::uint8_t
{
    Private,
    VmShared,
    ContentShared,
    /** Hypervisor (Xen) global data. */
    Hypervisor,
    /** domain0 I/O ring pages. */
    Domain0,
    /** Direct inter-VM communication channel pages. */
    Channel,
};

/** Number of AccessCategory values. */
constexpr std::size_t kNumAccessCategories = 6;

/** Human-readable category name. */
const char *accessCategoryName(AccessCategory c);

/**
 * Declare the VM's content-shared candidate pages with the
 * hypervisor.  Must be called once per VM before the content scan;
 * VMs running the same application declare the same classes and
 * therefore merge.
 */
void declareContentPages(Hypervisor &hypervisor, VmId vm,
                         const AppProfile &profile);

/**
 * The per-vCPU access stream.
 */
class VcpuWorkload
{
  public:
    /** One generated access plus the think gap that precedes it. */
    struct Step
    {
        MemAccess access;
        AccessCategory category = AccessCategory::Private;
        /** Ticks between the previous completion and this issue. */
        Tick gap = 1;
        /** This access broke content sharing via COW. */
        bool cowBroke = false;
    };

    /**
     * @param hypervisor The hypervisor for address translation.
     * @param vm Owning VM.
     * @param vcpu_index Index of this vCPU within the VM (selects
     *        the private sub-region).
     * @param profile Application behaviour.
     * @param seed Deterministic per-vCPU RNG seed.
     */
    VcpuWorkload(Hypervisor &hypervisor, VmId vm,
                 std::uint32_t vcpu_index, const AppProfile &profile,
                 std::uint64_t seed);

    /** Generate the next access. */
    Step next();

    VmId vm() const { return vm_; }
    const AppProfile &profile() const { return profile_; }

    /** Zero the generation statistics. */
    void
    resetStats()
    {
        for (auto &counter : accessesByCategory)
            counter.reset();
        totalAccesses.reset();
        writes.reset();
        cowBreaks.reset();
    }

    /** @{ Generation statistics (access level, i.e. Table V's
     *     "Access" column granularity). */
    Counter accessesByCategory[kNumAccessCategories];
    Counter totalAccesses;
    Counter writes;
    Counter cowBreaks;
    /** @} */

  private:
    Hypervisor &hypervisor_;
    VmId vm_;
    std::uint32_t vcpuIndex_;
    AppProfile profile_;
    HypervisorConfig hvConfig_;
    /** Channel partner (kInvalidVm when channels are unused). */
    VmId partner_ = kInvalidVm;
    Rng rng_;
};

} // namespace vsnoop

#endif // VSNOOP_WORKLOAD_GENERATOR_HH_
