/**
 * @file
 * Per-application workload profiles.
 *
 * The paper evaluates SPLASH-2, PARSEC, SPECjbb, OLTP and SPECweb
 * binaries on Virtual-GEMS and a real Xen host.  This repository
 * replaces the binaries with synthetic generators parameterized per
 * application.  Each profile captures the address-stream properties
 * that the paper's results actually depend on:
 *
 *  - the size and reuse skew of the VM-private working set (drives
 *    L2 miss rates and residence-counter drain times, Figure 9);
 *  - the fraction of accesses touching content-shared pages and the
 *    size of that region (Table V);
 *  - the fraction of accesses involving the hypervisor or domain0
 *    (Figure 1);
 *  - true sharing among a VM's vCPUs (cache-to-cache transfers);
 *  - scheduler-level behaviour: runnable/blocked phase lengths and
 *    domain0 I/O activity (Figure 3, Table I).
 *
 * The numeric calibration targets are quoted from the paper next to
 * each profile in app_profile.cc.
 */

#ifndef VSNOOP_WORKLOAD_APP_PROFILE_HH_
#define VSNOOP_WORKLOAD_APP_PROFILE_HH_

#include <cstdint>
#include <string>
#include <vector>

#include "virt/sched_sim.hh"

namespace vsnoop
{

/**
 * A synthetic application description.
 */
struct AppProfile
{
    std::string name;

    /** @{ Memory behaviour (drives the coherence simulations). */
    /** Private working-set pages per vCPU. */
    std::uint64_t privatePagesPerVcpu = 256;
    /** Zipf skew of private-region reuse (0 = uniform). */
    double privateSkew = 0.6;
    /** Pages shared (read/write) among the vCPUs of one VM. */
    std::uint64_t vmSharedPages = 32;
    /** Fraction of accesses to the VM-shared region. */
    double vmSharedFraction = 0.05;
    /** Content-identical pages per VM (dedup candidates). */
    std::uint64_t contentPages = 64;
    /** Fraction of accesses to content-shared pages (Table V). */
    double contentFraction = 0.05;
    /** Zipf skew of the content region. */
    double contentSkew = 0.3;
    /** Fraction of accesses that trap to the hypervisor or touch
     *  domain0-shared pages (Figure 1). */
    double hypervisorFraction = 0.01;
    /** Fraction of accesses to direct inter-VM communication
     *  channels with the partner (friend) VM — Section II-B's third
     *  sharing source.  RW-shared, so these always broadcast. */
    double channelFraction = 0.0;
    /** Write probability for private / VM-shared accesses. */
    double writeFraction = 0.25;
    /** Write probability on content-shared pages (triggers COW). */
    double contentWriteFraction = 0.0005;
    /** Mean ticks between post-L1 (L2-level) accesses per vCPU. */
    double meanAccessGap = 15.0;
    /** @} */

    /** Scheduler-level behaviour (Figure 3, Table I). */
    SchedProfile sched;
};

/**
 * The ten applications of the coherence evaluation (Tables III-VI,
 * Figures 6-10): SPLASH-2 cholesky/fft/lu/ocean/radix, PARSEC
 * blackscholes/canneal/dedup/ferret, and SPECjbb.
 */
const std::vector<AppProfile> &coherenceApps();

/**
 * The thirteen PARSEC applications of the real-system scheduler
 * study (Figure 3, Table I).
 */
const std::vector<AppProfile> &schedulerApps();

/**
 * The Figure 1 set: schedulerApps() plus the OLTP and SPECweb
 * server workloads.
 */
const std::vector<AppProfile> &hypervisorStudyApps();

/** Find a profile by name in any of the catalogs; fatal if absent. */
const AppProfile &findApp(const std::string &name);

/** Find a profile by name; nullptr if absent (CLI error paths). */
const AppProfile *tryFindApp(const std::string &name);

/** Every profile name, catalog order (for CLI error messages). */
std::vector<std::string> knownAppNames();

} // namespace vsnoop

#endif // VSNOOP_WORKLOAD_APP_PROFILE_HH_
