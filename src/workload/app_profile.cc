#include "workload/app_profile.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vsnoop
{

namespace
{

/**
 * Helper assembling a coherence-study profile.  The calibration
 * targets quoted in comments are the paper's measurements:
 * Table V (content-shared access / L2-miss percentages) and
 * Figure 1 (hypervisor + domain0 L2-miss shares).
 */
AppProfile
coherenceProfile(const std::string &name, std::uint64_t priv_pages,
                 double priv_skew, std::uint64_t content_pages,
                 double content_fraction, double content_skew,
                 double hv_fraction, double vm_shared_fraction,
                 double write_fraction)
{
    AppProfile p;
    p.name = name;
    p.privatePagesPerVcpu = priv_pages;
    p.privateSkew = priv_skew;
    p.contentPages = content_pages;
    p.contentFraction = content_fraction;
    p.contentSkew = content_skew;
    p.hypervisorFraction = hv_fraction;
    p.vmSharedFraction = vm_shared_fraction;
    p.writeFraction = write_fraction;
    p.vmSharedPages = 8;
    return p;
}

/** Helper assembling a scheduler-study profile (Fig 3, Table I). */
SchedProfile
schedProfile(double run_ms, double block_ms, double dom0_rate,
             double wake_migrate, double phase_ms = 0.0)
{
    SchedProfile s;
    s.meanRunMs = run_ms;
    s.meanBlockMs = block_ms;
    s.dom0WakeupsPerSec = dom0_rate;
    s.wakeMigrateProb = wake_migrate;
    s.phaseWorkMs = phase_ms;
    return s;
}

std::vector<AppProfile>
buildCoherenceApps()
{
    std::vector<AppProfile> apps;

    // SPLASH-2 cholesky.  Table V: 1.45% content accesses, 2.66% of
    // L2 misses.  Resident private set, modest cool content region.
    apps.push_back(coherenceProfile("cholesky", 100, 0.6, 96, 0.0145,
                                    0.1, 0.004, 0.04, 0.25));
    // SPLASH-2 fft.  Table V: 5.43% / 30.64% — a hot private set
    // with a large, poorly-reused content region (bit-reversed
    // twiddle tables shared across the identical VMs).
    apps.push_back(coherenceProfile("fft", 20, 0.85, 256, 0.0543, 0.05,
                                    0.004, 0.03, 0.30));
    // SPLASH-2 lu.  Table V: 0.43% / 8.87% — tiny content access
    // share but the content region always misses while the private
    // blocks stay resident.
    apps.push_back(coherenceProfile("lu", 10, 0.95, 160, 0.0043, 0.0,
                                    0.003, 0.04, 0.30));
    // SPLASH-2 ocean.  Table V: 0.40% / 0.83% — private grids
    // stream (high private miss rate); the rarely-touched content
    // region misses but is a tiny share.
    apps.push_back(coherenceProfile("ocean", 400, 0.2, 48, 0.004, 0.0,
                                    0.003, 0.05, 0.30));
    // SPLASH-2 radix.  Table V: 20.47% / 0.96% — a hot, tiny
    // content region (shared radix tables) that caches perfectly,
    // while the private key arrays stream.
    apps.push_back(coherenceProfile("radix", 500, 0.1, 1, 0.2047, 0.0,
                                    0.004, 0.03, 0.35));
    // PARSEC blackscholes.  Table V: 46.16% / 41.10% — a small
    // working set overall (Section V-C notes the residence counters
    // never drain), with nearly half the accesses on the shared
    // option-pricing tables.
    apps.push_back(coherenceProfile("blackscholes", 16, 0.4, 14, 0.4616,
                                    0.3, 0.002, 0.02, 0.15));
    // PARSEC canneal.  Table V: 25.16% / 51.49% — random walks over
    // a large content-shared netlist; the private state has decent
    // locality, so content misses dominate.
    apps.push_back(coherenceProfile("canneal", 22, 0.85, 400, 0.2516,
                                    0.0, 0.003, 0.03, 0.20));
    // PARSEC dedup (Table IV / Fig 6 only; not in Table V).
    // Figure 1: the highest hypervisor share of the PARSEC set
    // (11%), from pipeline I/O through domain0.
    apps.push_back(coherenceProfile("dedup", 200, 0.45, 32, 0.03, 0.3,
                                    0.012, 0.08, 0.30));
    // PARSEC ferret.  Table V: 3.64% / 5.13%.
    apps.push_back(coherenceProfile("ferret", 250, 0.4, 96, 0.0364, 0.2,
                                    0.007, 0.06, 0.25));
    // SPECjbb2k.  Table V: 9.48% / 37.74% — large shared code and
    // class-data footprint across the identical JVMs.
    apps.push_back(coherenceProfile("specjbb", 22, 0.9, 300, 0.0948,
                                    0.15, 0.006, 0.05, 0.30));

    // Scheduler parameters for the subset that also appears in the
    // scheduler study.
    for (auto &app : apps) {
        if (app.name == "blackscholes")
            app.sched = schedProfile(4500, 100, 0.5, 0.8, 4600);
        else if (app.name == "canneal")
            app.sched = schedProfile(40, 5, 5, 0.8, 45);
        else if (app.name == "dedup")
            app.sched = schedProfile(15, 2.5, 50, 0.8, 17.5);
        else if (app.name == "ferret")
            app.sched = schedProfile(560, 40, 20, 0.8, 600);
    }
    return apps;
}

std::vector<AppProfile>
buildSchedulerApps()
{
    // Calibration targets: Table I undercommitted relocation
    // periods (ms): blackscholes 2880.6, bodytrack 26.1, canneal
    // 28.4, dedup 10.8, facesim 30.0, ferret 375.9, fluidanimate
    // 46.6, freqmine 1968.0, raytrace 528.8, streamcluster 36.2,
    // swaptions 2203.1, vips 18.3, x264 29.2.  Relocations are
    // driven by event-channel wakes (blocking frequency), barrier
    // releases (phase granularity) and domain0 displacement, each
    // landing the vCPU on a new core with wakeMigrateProb.
    struct Row
    {
        const char *name;
        double run, block, dom0, phase;
    };
    const Row rows[] = {
        {"blackscholes", 10600, 230, 0.2, 10800},
        {"bodytrack", 27, 4.5, 15, 31},
        {"canneal", 29, 3.6, 5, 33},
        {"dedup", 10, 1.7, 50, 12},
        {"facesim", 31, 4.4, 10, 35},
        {"ferret", 1800, 130, 8, 1900},
        {"fluidanimate", 52, 8, 8, 60},
        {"freqmine", 1150, 700, 1, 1850},
        {"raytrace", 1450, 90, 2, 1500},
        {"streamcluster", 37, 6, 6, 43},
        {"swaptions", 7300, 215, 0.3, 7500},
        {"vips", 17.5, 3, 30, 20},
        {"x264", 30, 4.5, 12, 35},
    };
    std::vector<AppProfile> apps;
    for (const Row &row : rows) {
        AppProfile p;
        p.name = row.name;
        p.sched =
            schedProfile(row.run, row.block, row.dom0, 0.8, row.phase);
        // Memory-side parameters are irrelevant for the scheduler
        // study but kept reasonable for completeness.
        p.privatePagesPerVcpu = 200;
        p.hypervisorFraction = 0.004;
        apps.push_back(p);
    }
    return apps;
}

std::vector<AppProfile>
buildHypervisorStudyApps()
{
    // Figure 1 targets (hypervisor + domain0 share of L2 misses):
    // PARSEC < 5% except dedup 11%, freqmine 8%, raytrace 7%;
    // OLTP 15%; SPECweb 19%.  The hypervisorFraction values below
    // are access-level fractions chosen so that, combined with the
    // near-certain miss behaviour of RW-shared lines, the measured
    // miss shares land near the targets.
    std::vector<AppProfile> apps = buildSchedulerApps();
    auto set_hv = [&](const std::string &name, double fraction,
                      std::uint64_t priv_pages) {
        for (auto &a : apps) {
            if (a.name == name) {
                a.hypervisorFraction = fraction;
                a.privatePagesPerVcpu = priv_pages;
                return;
            }
        }
        vsnoop_panic("unknown app ", name);
    };
    set_hv("blackscholes", 0.006, 16);
    set_hv("bodytrack", 0.024, 180);
    set_hv("canneal", 0.026, 300);
    set_hv("dedup", 0.10, 200);
    set_hv("facesim", 0.025, 250);
    set_hv("ferret", 0.033, 250);
    set_hv("fluidanimate", 0.025, 220);
    set_hv("freqmine", 0.072, 180);
    set_hv("raytrace", 0.060, 200);
    set_hv("streamcluster", 0.033, 300);
    set_hv("swaptions", 0.013, 60);
    set_hv("vips", 0.033, 220);
    set_hv("x264", 0.032, 200);

    AppProfile oltp;
    oltp.name = "OLTP";
    oltp.privatePagesPerVcpu = 220;
    oltp.privateSkew = 0.6;
    oltp.hypervisorFraction = 0.14;
    oltp.vmSharedFraction = 0.10;
    oltp.writeFraction = 0.35;
    oltp.sched = schedProfile(10, 4, 80, 0.8);
    apps.push_back(oltp);

    AppProfile specweb;
    specweb.name = "SPECweb";
    specweb.privatePagesPerVcpu = 200;
    specweb.privateSkew = 0.6;
    specweb.hypervisorFraction = 0.19;
    specweb.vmSharedFraction = 0.10;
    specweb.writeFraction = 0.30;
    specweb.sched = schedProfile(8, 4, 100, 0.8);
    apps.push_back(specweb);
    return apps;
}

} // namespace

const std::vector<AppProfile> &
coherenceApps()
{
    static const std::vector<AppProfile> apps = buildCoherenceApps();
    return apps;
}

const std::vector<AppProfile> &
schedulerApps()
{
    static const std::vector<AppProfile> apps = buildSchedulerApps();
    return apps;
}

const std::vector<AppProfile> &
hypervisorStudyApps()
{
    static const std::vector<AppProfile> apps = buildHypervisorStudyApps();
    return apps;
}

const AppProfile *
tryFindApp(const std::string &name)
{
    for (const auto &catalog :
         {&coherenceApps(), &schedulerApps(), &hypervisorStudyApps()}) {
        for (const auto &app : *catalog) {
            if (app.name == name)
                return &app;
        }
    }
    return nullptr;
}

const AppProfile &
findApp(const std::string &name)
{
    const AppProfile *app = tryFindApp(name);
    if (app == nullptr)
        vsnoop_fatal("unknown application profile: ", name);
    return *app;
}

std::vector<std::string>
knownAppNames()
{
    std::vector<std::string> names;
    for (const auto &catalog :
         {&coherenceApps(), &schedulerApps(), &hypervisorStudyApps()}) {
        for (const auto &app : *catalog) {
            // Catalogs overlap (e.g. the PARSEC names appear in both
            // the coherence and scheduler sets); keep first mention.
            if (std::find(names.begin(), names.end(), app.name) ==
                names.end())
                names.push_back(app.name);
        }
    }
    return names;
}

} // namespace vsnoop
