#include "workload/generator.hh"

#include <algorithm>
#include <functional>

#include "sim/logging.hh"

namespace vsnoop
{

const char *
accessCategoryName(AccessCategory c)
{
    switch (c) {
      case AccessCategory::Private:
        return "private";
      case AccessCategory::VmShared:
        return "vm-shared";
      case AccessCategory::ContentShared:
        return "content-shared";
      case AccessCategory::Hypervisor:
        return "hypervisor";
      case AccessCategory::Domain0:
        return "domain0";
      case AccessCategory::Channel:
        return "inter-VM channel";
    }
    return "unknown";
}

namespace
{

/** Stable content-class namespace per application. */
std::uint64_t
contentClassBase(const AppProfile &profile)
{
    // Same application => same classes across VMs; different
    // applications never collide (hash-partitioned namespace).
    return (std::hash<std::string>{}(profile.name) | 1ULL) << 20;
}

} // namespace

void
declareContentPages(Hypervisor &hypervisor, VmId vm,
                    const AppProfile &profile)
{
    std::uint64_t base = contentClassBase(profile);
    for (std::uint64_t i = 0; i < profile.contentPages; ++i) {
        hypervisor.declareContent(vm, kContentBase + i, base + i + 1);
    }
}

VcpuWorkload::VcpuWorkload(Hypervisor &hypervisor, VmId vm,
                           std::uint32_t vcpu_index,
                           const AppProfile &profile, std::uint64_t seed)
    : hypervisor_(hypervisor), vm_(vm), vcpuIndex_(vcpu_index),
      profile_(profile), hvConfig_(hypervisor.config()),
      rng_(seed, (static_cast<std::uint64_t>(vm) << 16) | vcpu_index)
{
    if (profile_.channelFraction > 0.0 && hypervisor.numVms() >= 2) {
        // Channels pair adjacent VMs (the friend-VM pairing).
        partner_ = static_cast<VmId>(vm ^ 1U);
        if (partner_ >= hypervisor.numVms())
            partner_ = kInvalidVm;
    }
}

VcpuWorkload::Step
VcpuWorkload::next()
{
    Step step;
    totalAccesses.inc();

    double r = rng_.uniform();
    std::uint64_t line_off =
        rng_.below(static_cast<std::uint32_t>(kLinesPerPage)) * kLineBytes;

    double hv = profile_.hypervisorFraction;
    double channel =
        partner_ != kInvalidVm ? profile_.channelFraction : 0.0;
    double content = profile_.contentFraction;
    double vm_shared = profile_.vmSharedFraction;

    bool write = false;
    Translation t;

    if (r < channel) {
        // Direct inter-VM communication with the partner VM over
        // shared ring pages: both sides read and write.
        auto page =
            rng_.below(static_cast<std::uint32_t>(
                std::max<std::uint64_t>(1, hvConfig_.channelPages)));
        write = rng_.chance(0.5);
        t = hypervisor_.channelAddr(vm_, partner_, page, line_off);
        step.category = AccessCategory::Channel;
    } else if (r < channel + hv) {
        // A trap into the hypervisor or an I/O interaction with
        // domain0 through shared ring pages.  Both are RW-shared.
        bool dom0 = rng_.chance(0.6);
        write = rng_.chance(0.3);
        if (dom0) {
            auto page = rng_.below(static_cast<std::uint32_t>(
                hvConfig_.perVmSharedPages));
            t = hypervisor_.vmSharedAddr(vm_, page, line_off);
            step.category = AccessCategory::Domain0;
        } else {
            auto page = rng_.below(static_cast<std::uint32_t>(
                hvConfig_.hypervisorPages));
            t = hypervisor_.hypervisorAddr(page, line_off);
            step.category = AccessCategory::Hypervisor;
        }
    } else if (r < channel + hv + content && profile_.contentPages > 0) {
        std::uint64_t page =
            kContentBase +
            rng_.zipf(static_cast<std::uint32_t>(profile_.contentPages),
                      profile_.contentSkew);
        write = rng_.chance(profile_.contentWriteFraction);
        t = hypervisor_.translateData(
            vm_, makeGuestAddr(page, line_off), write);
        step.category = AccessCategory::ContentShared;
        if (t.cowBroke) {
            cowBreaks.inc();
            step.cowBroke = true;
        }
    } else if (r < channel + hv + content + vm_shared &&
               profile_.vmSharedPages > 0) {
        std::uint64_t page =
            kVmSharedBase +
            rng_.below(static_cast<std::uint32_t>(profile_.vmSharedPages));
        write = rng_.chance(profile_.writeFraction);
        t = hypervisor_.translateData(
            vm_, makeGuestAddr(page, line_off), write);
        step.category = AccessCategory::VmShared;
    } else {
        std::uint64_t page =
            kPrivateBase +
            static_cast<std::uint64_t>(vcpuIndex_) *
                profile_.privatePagesPerVcpu +
            rng_.zipf(
                static_cast<std::uint32_t>(profile_.privatePagesPerVcpu),
                profile_.privateSkew);
        write = rng_.chance(profile_.writeFraction);
        t = hypervisor_.translateData(
            vm_, makeGuestAddr(page, line_off), write);
        step.category = AccessCategory::Private;
    }

    accessesByCategory[static_cast<std::size_t>(step.category)].inc();
    if (write)
        writes.inc();

    step.access.addr = t.addr;
    step.access.isWrite = write;
    step.access.vm = vm_;
    step.access.pageType = t.type;

    // Think time between L2-level accesses: geometric around the
    // profile mean, at least one cycle.
    double mean = profile_.meanAccessGap;
    if (mean <= 1.0) {
        step.gap = 1;
    } else {
        step.gap = 1 + rng_.geometric(1.0 / mean);
    }
    return step;
}

} // namespace vsnoop
