#include "mem/cache.hh"

#include "sim/logging.hh"

namespace vsnoop
{

Cache::Cache(std::uint64_t size_bytes, std::uint32_t ways,
             ReplacementPolicy policy)
    : ways_(ways), policy_(policy)
{
    vsnoop_assert(ways > 0, "cache needs at least one way");
    std::uint64_t lines = size_bytes / kLineBytes;
    vsnoop_assert(lines >= ways && lines % ways == 0,
                  "cache size ", size_bytes,
                  "B not divisible into ", ways, " ways");
    sets_ = static_cast<std::uint32_t>(lines / ways);
    setMask_ = (sets_ & (sets_ - 1)) == 0 ? sets_ - 1 : 0;
    lines_.resize(lines);
    tags_.assign(lines, kNoTag);
    lastUse_.assign(lines, 0);
}

std::uint32_t
Cache::setIndex(HostAddr line_addr) const
{
    // Set counts are powers of two in every realistic geometry; keep
    // the division only for odd test configurations.
    if (setMask_ != 0 || sets_ == 1)
        return static_cast<std::uint32_t>(line_addr.lineNum()) & setMask_;
    return static_cast<std::uint32_t>(line_addr.lineNum() % sets_);
}

CacheLine *
Cache::find(HostAddr line_addr)
{
    HostAddr aligned = line_addr.lineAligned();
    std::uint32_t base = setIndex(aligned) * ways_;
    std::uint64_t raw = aligned.raw();
    const std::uint64_t *tags = tags_.data() + base;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (tags[w] == raw)
            return &lines_[base + w];
    }
    return nullptr;
}

const CacheLine *
Cache::find(HostAddr line_addr) const
{
    return const_cast<Cache *>(this)->find(line_addr);
}

CacheLine &
Cache::victimFor(HostAddr line_addr)
{
    HostAddr aligned = line_addr.lineAligned();
    std::uint32_t base = setIndex(aligned) * ways_;
    // Prefer an empty way (the tag array encodes validity).
    const std::uint64_t *tags = tags_.data() + base;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (tags[w] == kNoTag)
            return lines_[base + w];
    }
    if (policy_ == ReplacementPolicy::Random) {
        // xorshift64* keeps the cache self-contained; replacement
        // randomness does not need to be coordinated with workload
        // randomness.
        for (std::uint32_t tries = 0; tries < 4 * ways_; ++tries) {
            randState_ ^= randState_ >> 12;
            randState_ ^= randState_ << 25;
            randState_ ^= randState_ >> 27;
            std::uint64_t r = randState_ * 2685821657736338717ULL;
            CacheLine &cand = lines_[base + (r % ways_)];
            if (!cand.pinned)
                return cand;
        }
        // Fall through to the LRU scan if randomness keeps hitting
        // pinned ways.
    }
    // LRU: oldest lastUse via the packed mirror array; only when the
    // winner turns out to be pinned (rare — pins cover in-flight
    // upgrades only) fall back to the full unpinned scan.
    const std::uint64_t *uses = lastUse_.data() + base;
    std::uint32_t best = 0;
    for (std::uint32_t w = 1; w < ways_; ++w) {
        if (uses[w] < uses[best])
            best = w;
    }
    if (!lines_[base + best].pinned)
        return lines_[base + best];
    CacheLine *victim = nullptr;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        CacheLine &cand = lines_[base + w];
        if (cand.pinned)
            continue;
        if (victim == nullptr || cand.lastUse < victim->lastUse)
            victim = &cand;
    }
    vsnoop_assert(victim != nullptr,
                  "every way in the set is pinned; associativity too low "
                  "for the number of outstanding upgrades");
    return *victim;
}

CacheLine &
Cache::install(CacheLine &slot, HostAddr line_addr, VmId vm,
               PageType type, std::uint32_t tokens, bool owner, bool dirty)
{
    vsnoop_assert(!slot.valid,
                  "install into an occupied slot; evict the victim first");
    vsnoop_assert(tokens >= 1, "a valid line must hold at least one token");
    slot.addr = line_addr.lineAligned();
    slot.valid = true;
    slot.tokens = tokens;
    slot.owner = owner;
    slot.dirty = dirty;
    slot.vm = vm;
    slot.pageType = type;
    slot.providerVms = 0;
    slot.pinned = false;
    slot.lastUse = ++accessSeq_;
    tags_[&slot - lines_.data()] = slot.addr.raw();
    lastUse_[&slot - lines_.data()] = slot.lastUse;
    if (observer_)
        observer_->onLineInserted(vm, type);
    return slot;
}

void
Cache::remove(CacheLine &line)
{
    vsnoop_assert(line.valid, "removing an invalid line");
    VmId vm = line.vm;
    PageType type = line.pageType;
    line.valid = false;
    line.tokens = 0;
    line.owner = false;
    line.dirty = false;
    line.providerVms = 0;
    line.pinned = false;
    line.vm = kInvalidVm;
    tags_[&line - lines_.data()] = kNoTag;
    if (observer_)
        observer_->onLineRemoved(vm, type);
}

std::uint64_t
Cache::linesForVm(VmId vm) const
{
    std::uint64_t count = 0;
    for (const auto &line : lines_) {
        if (line.valid && line.vm == vm)
            count++;
    }
    return count;
}

std::uint64_t
Cache::validLines() const
{
    std::uint64_t count = 0;
    for (const auto &line : lines_) {
        if (line.valid)
            count++;
    }
    return count;
}

void
Cache::forEachLine(const std::function<void(const CacheLine &)> &fn) const
{
    for (const auto &line : lines_) {
        if (line.valid)
            fn(line);
    }
}

std::vector<CacheLine *>
Cache::collectLines(const std::function<bool(const CacheLine &)> &pred)
{
    std::vector<CacheLine *> out;
    for (auto &line : lines_) {
        if (line.valid && pred(line))
            out.push_back(&line);
    }
    return out;
}

} // namespace vsnoop
