/**
 * @file
 * Memory-side token ledger and latency model.
 *
 * In token coherence the memory is a first-class token holder: a
 * line whose tokens are nowhere cached has all of them (including
 * the owner token) at memory.  The ledger stores only lines that
 * deviate from that default, so its footprint tracks the number of
 * lines with cached copies rather than the address space.
 *
 * The chip has several memory controllers attached to mesh nodes;
 * lines interleave across them by line number.  The ledger itself
 * is global (one token ledger per line regardless of controller).
 */

#ifndef VSNOOP_MEM_MAIN_MEMORY_HH_
#define VSNOOP_MEM_MAIN_MEMORY_HH_

#include <cstdint>
#include <vector>

#include "mem/addr.hh"
#include "sim/flat_table.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vsnoop
{

/**
 * Token state held at memory for one line.
 */
struct MemLineState
{
    std::uint32_t tokens = 0;
    bool owner = false;
};

/**
 * The memory system: token ledger plus access latency.
 */
class MainMemory
{
  public:
    /**
     * @param tokens_per_line Total tokens T per line (== number of
     *        cores in the paper's protocol).
     * @param num_controllers How many memory controllers share the
     *        address space.
     * @param latency DRAM access latency in ticks.
     */
    MainMemory(std::uint32_t tokens_per_line,
               std::uint32_t num_controllers, Tick latency);

    std::uint32_t tokensPerLine() const { return tokensPerLine_; }
    std::uint32_t numControllers() const { return numControllers_; }
    Tick latency() const { return latency_; }

    /** Controller index that owns @p line_addr (line interleave). */
    std::uint32_t controllerFor(HostAddr line_addr) const;

    /** Tokens currently held at memory for @p line_addr. */
    MemLineState state(HostAddr line_addr) const;

    /**
     * Take up to @p want tokens from memory for a read/write
     * request.  The owner token is surrendered only when
     * @p may_take_owner is set (reads prefer to leave ownership at
     * memory when plain tokens are available).
     *
     * @return The tokens removed and whether the owner token is
     *         among them.
     */
    MemLineState takeTokens(HostAddr line_addr, std::uint32_t want,
                            bool may_take_owner);

    /**
     * Return tokens to memory (eviction, writeback, or persistent
     * deactivation).
     *
     * @param line_addr The line.
     * @param tokens Plain token count being returned (including the
     *        owner token if @p owner).
     * @param owner True when the owner token is returned.
     */
    void returnTokens(HostAddr line_addr, std::uint32_t tokens, bool owner);

    /**
     * True when memory can supply data for a read of @p line_addr:
     * it holds the owner token (so its copy is current), or the
     * line is clean-by-construction (RO-shared pages are flushed
     * when marked, so memory data is always current for them).
     */
    bool canProvideData(HostAddr line_addr, bool line_is_ro_shared) const;

    /** Number of lines whose tokens are (partially) cached. */
    std::size_t ledgerSize() const { return ledger_.size(); }

    /** Allocated ledger table slots. */
    std::size_t ledgerCapacity() const { return ledger_.capacity(); }

    /**
     * Attach an internals counter block to the token ledger
     * (sim/perfmon.hh); nullptr detaches.
     */
    void setLedgerPerf(FlatTablePerf *perf) { ledger_.setPerf(perf); }

    /**
     * Pre-size the ledger for @p lines deviating entries (the
     * system reserves aggregate L2 capacity plus headroom up front
     * so the miss path never rehashes).
     */
    void reserveLedger(std::size_t lines) { ledger_.reserve(lines); }

    /**
     * Visit the line number of every ledger entry (lines deviating
     * from the all-tokens-at-memory default), for invariant checks.
     */
    template <typename Fn>
    void
    forEachLedgerLine(Fn &&fn) const
    {
        ledger_.forEach(
            [&](std::uint64_t line_num, const MemLineState &) {
                fn(line_num);
            });
    }

    /** @{ Statistics. */
    Counter reads;
    Counter writebacks;
    Counter dataProvided;
    /** @} */

  private:
    std::uint32_t tokensPerLine_;
    std::uint32_t numControllers_;
    /** numControllers_ - 1 when a power of two, else 0 (modulo path). */
    std::uint32_t ctrlMask_ = 0;
    Tick latency_;
    /** Lines deviating from the all-tokens-at-memory default. */
    FlatMap<MemLineState> ledger_;
};

} // namespace vsnoop

#endif // VSNOOP_MEM_MAIN_MEMORY_HH_
