#include "mem/residence.hh"

#include "sim/logging.hh"

namespace vsnoop
{

ResidenceCounters::ResidenceCounters(std::size_t num_vms)
    : counts_(num_vms, 0)
{
}

std::uint64_t
ResidenceCounters::count(VmId vm) const
{
    if (vm >= counts_.size())
        return 0;
    return counts_[vm];
}

void
ResidenceCounters::onLineInserted(VmId vm, PageType type)
{
    if (type != PageType::VmPrivate || vm >= counts_.size())
        return;
    counts_[vm]++;
    if (callback_)
        callback_(vm, counts_[vm]);
}

void
ResidenceCounters::onLineRemoved(VmId vm, PageType type)
{
    if (type != PageType::VmPrivate || vm >= counts_.size())
        return;
    vsnoop_assert(counts_[vm] > 0,
                  "residence counter underflow for VM ", vm);
    counts_[vm]--;
    if (callback_)
        callback_(vm, counts_[vm]);
}

} // namespace vsnoop
