#include "mem/main_memory.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vsnoop
{

MainMemory::MainMemory(std::uint32_t tokens_per_line,
                       std::uint32_t num_controllers, Tick latency)
    : tokensPerLine_(tokens_per_line), numControllers_(num_controllers),
      latency_(latency)
{
    vsnoop_assert(tokens_per_line >= 1, "need at least one token per line");
    vsnoop_assert(num_controllers >= 1, "need at least one controller");
    ctrlMask_ = (numControllers_ & (numControllers_ - 1)) == 0
                    ? numControllers_ - 1
                    : 0;
}

std::uint32_t
MainMemory::controllerFor(HostAddr line_addr) const
{
    // Controller counts are powers of two in every shipped config;
    // keep the division only for odd test configurations.
    if (ctrlMask_ != 0 || numControllers_ == 1)
        return static_cast<std::uint32_t>(line_addr.lineNum()) & ctrlMask_;
    return static_cast<std::uint32_t>(line_addr.lineNum() % numControllers_);
}

MemLineState
MainMemory::state(HostAddr line_addr) const
{
    const MemLineState *st = ledger_.find(line_addr.lineAligned().lineNum());
    if (st == nullptr)
        return MemLineState{tokensPerLine_, true};
    return *st;
}

MemLineState
MainMemory::takeTokens(HostAddr line_addr, std::uint32_t want,
                       bool may_take_owner)
{
    std::uint64_t key = line_addr.lineAligned().lineNum();
    MemLineState *entry = ledger_.find(key);
    MemLineState cur = (entry == nullptr)
        ? MemLineState{tokensPerLine_, true}
        : *entry;

    MemLineState taken;
    if (cur.tokens == 0)
        return taken;

    std::uint32_t plain = cur.tokens - (cur.owner ? 1 : 0);
    std::uint32_t give_plain = std::min(want, plain);
    taken.tokens = give_plain;
    cur.tokens -= give_plain;
    want -= give_plain;

    if (want > 0 && cur.owner && may_take_owner) {
        taken.tokens += 1;
        taken.owner = true;
        cur.tokens -= 1;
        cur.owner = false;
    }

    if (cur.tokens == tokensPerLine_ && cur.owner) {
        // Back at the default state: drop the ledger entry.
        if (entry != nullptr)
            ledger_.erase(key);
    } else if (entry != nullptr) {
        *entry = cur;
    } else {
        ledger_.emplace(key, cur);
    }
    return taken;
}

void
MainMemory::returnTokens(HostAddr line_addr, std::uint32_t tokens,
                         bool owner)
{
    if (tokens == 0 && !owner)
        return;
    std::uint64_t key = line_addr.lineAligned().lineNum();
    MemLineState *entry = ledger_.find(key);
    MemLineState cur = (entry == nullptr)
        ? MemLineState{tokensPerLine_, true}
        : *entry;

    cur.tokens += tokens;
    if (owner) {
        vsnoop_assert(!cur.owner,
                      "owner token returned while memory already owns line ",
                      line_addr.raw());
        cur.owner = true;
    }
    vsnoop_assert(cur.tokens <= tokensPerLine_,
                  "token overflow at memory for line ", line_addr.raw(),
                  ": ", cur.tokens, " > ", tokensPerLine_);

    if (cur.tokens == tokensPerLine_ && cur.owner) {
        if (entry != nullptr)
            ledger_.erase(key);
    } else if (entry != nullptr) {
        *entry = cur;
    } else {
        ledger_.emplace(key, cur);
    }
}

bool
MainMemory::canProvideData(HostAddr line_addr, bool line_is_ro_shared) const
{
    if (line_is_ro_shared)
        return true;
    return state(line_addr).owner;
}

} // namespace vsnoop
