/**
 * @file
 * Set-associative cache with token-coherence line metadata.
 *
 * The coherence protocol keeps its per-line state (token count,
 * owner token, dirty flag) directly in the cache line, as a real
 * MOESI token-coherence L2 would.  Each line also carries the id of
 * the VM that allocated it and the page sharing type, which the
 * virtual-snooping residence counters and the RO-shared provider
 * designation need (Sections IV-B and VI-B of the paper).
 *
 * The cache is a passive tag store: all protocol decisions (what to
 * do with an evicted owner line, when to invalidate on a snoop) are
 * made by the CoherenceController that owns the cache.
 */

#ifndef VSNOOP_MEM_CACHE_HH_
#define VSNOOP_MEM_CACHE_HH_

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "mem/addr.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace vsnoop
{

/**
 * One cache line's tag and coherence state.
 *
 * Token-coherence invariant: a line is valid iff it holds at least
 * one token.  The owner token implies responsibility for providing
 * data and for writing dirty data back on eviction.
 */
struct CacheLine
{
    /** Line-aligned host-physical address (the tag). */
    HostAddr addr{0};
    /** True when the entry holds a line. */
    bool valid = false;
    /** Tokens held; valid implies tokens >= 1. */
    std::uint32_t tokens = 0;
    /** Holds the owner token. */
    bool owner = false;
    /** Data differs from memory (meaningful only with owner). */
    bool dirty = false;
    /** VM that allocated the line (kInvalidVm for hypervisor). */
    VmId vm = kInvalidVm;
    /** Page sharing type at allocation time. */
    PageType pageType = PageType::VmPrivate;
    /**
     * For RO-shared lines: bitmask of VM ids for which this copy is
     * the designated per-VM provider (Section VI-B).  Bit i set
     * means VM i's intra-VM read requests are answered by this copy.
     */
    std::uint32_t providerVms = 0;
    /** LRU timestamp (monotonic access sequence number). */
    std::uint64_t lastUse = 0;
    /**
     * Excluded from victim selection while an in-flight upgrade
     * transaction counts this line's tokens toward its goal.
     */
    bool pinned = false;
};

/**
 * Observer informed when lines enter or leave the cache; the
 * virtual-snooping residence counters hook in here.
 */
class CacheObserver
{
  public:
    virtual ~CacheObserver() = default;

    /** A line for @p vm with type @p type was allocated. */
    virtual void onLineInserted(VmId vm, PageType type) = 0;

    /** A line for @p vm was evicted or invalidated. */
    virtual void onLineRemoved(VmId vm, PageType type) = 0;
};

/**
 * Replacement policy selector.
 */
enum class ReplacementPolicy : std::uint8_t
{
    Lru,
    Random,
};

/**
 * A set-associative tag store.
 */
class Cache
{
  public:
    /**
     * @param size_bytes Total capacity; must be a multiple of
     *        line size times associativity.
     * @param ways Associativity.
     * @param policy Victim selection policy.
     */
    Cache(std::uint64_t size_bytes, std::uint32_t ways,
          ReplacementPolicy policy = ReplacementPolicy::Lru);

    /** Attach an observer for insert/remove notifications. */
    void setObserver(CacheObserver *observer) { observer_ = observer; }

    std::uint32_t numSets() const { return sets_; }
    std::uint32_t numWays() const { return ways_; }
    std::uint64_t capacityLines() const { return lines_.size(); }

    /**
     * Look up a line by address.  Does not update LRU state; use
     * touch() for demand accesses.
     *
     * The scan runs over a packed parallel tag array (8 bytes per
     * way instead of a full CacheLine), so a whole set's tags fit
     * in one or two cache lines; the line metadata is only touched
     * on a hit.
     *
     * @return Pointer into the tag store, or nullptr on miss.  The
     *         pointer is invalidated by the next insert().
     */
    CacheLine *find(HostAddr line_addr);
    const CacheLine *find(HostAddr line_addr) const;

    /** Record a demand access for replacement purposes. */
    void touch(CacheLine &line) {
        line.lastUse = ++accessSeq_;
        lastUse_[&line - lines_.data()] = line.lastUse;
    }

    /**
     * Choose a victim way for @p line_addr without modifying
     * anything.  Prefers an invalid way; otherwise applies the
     * replacement policy.
     *
     * @return Reference to the victim slot (may be valid, in which
     *         case the caller must handle its eviction first).
     */
    CacheLine &victimFor(HostAddr line_addr);

    /**
     * Install a new line in @p slot (obtained from victimFor, which
     * the caller must already have emptied).
     *
     * @return Reference to the installed line.
     */
    CacheLine &install(CacheLine &slot, HostAddr line_addr, VmId vm,
                       PageType type, std::uint32_t tokens, bool owner,
                       bool dirty);

    /**
     * Remove a valid line from the cache (snoop invalidation or
     * eviction).  Notifies the observer and clears the slot.
     */
    void remove(CacheLine &line);

    /** Number of valid lines currently belonging to @p vm. */
    std::uint64_t linesForVm(VmId vm) const;

    /** Total valid lines. */
    std::uint64_t validLines() const;

    /**
     * Visit every valid line (e.g. for invariant checks or
     * selective flushes).  The visitor must not insert or remove.
     */
    void forEachLine(const std::function<void(const CacheLine &)> &fn) const;

    /**
     * Collect pointers to valid lines matching a predicate, for a
     * caller that will subsequently remove them (selective flush).
     */
    std::vector<CacheLine *>
    collectLines(const std::function<bool(const CacheLine &)> &pred);

    /** @{ Access statistics maintained by the owner via these. */
    Counter hits;
    Counter misses;
    Counter evictions;
    Counter invalidations;
    /** @} */

  private:
    std::uint32_t setIndex(HostAddr line_addr) const;

    /** Tag value no valid line can carry (addresses are aligned). */
    static constexpr std::uint64_t kNoTag = ~std::uint64_t{0};

    std::uint32_t sets_;
    /** sets_ - 1 when sets_ is a power of two, else 0 (modulo path). */
    std::uint32_t setMask_;
    std::uint32_t ways_;
    ReplacementPolicy policy_;
    std::vector<CacheLine> lines_;
    /** lines_[i].addr.raw() when valid, kNoTag otherwise. */
    std::vector<std::uint64_t> tags_;
    /** Mirror of lines_[i].lastUse so the LRU victim scan reads 8
     *  bytes per way instead of a full CacheLine. */
    std::vector<std::uint64_t> lastUse_;
    CacheObserver *observer_ = nullptr;
    std::uint64_t accessSeq_ = 0;
    std::uint64_t randState_ = 0x9e3779b97f4a7c15ULL;
};

} // namespace vsnoop

#endif // VSNOOP_MEM_CACHE_HH_
