/**
 * @file
 * Per-VM cache residence counters (Section IV-B of the paper).
 *
 * Each cache keeps one counter per VM recording how many VM-private
 * blocks of that VM it currently holds.  When a block is allocated
 * the counter for the allocating VM is incremented; on eviction or
 * invalidation it is decremented.  When a counter reaches zero the
 * core can safely be removed from that VM's vCPU map; the
 * counter-threshold variant removes the core speculatively as soon
 * as the counter drops below a small threshold.
 *
 * The unit implements CacheObserver so it can be attached directly
 * to a Cache.  Only VM-private lines are counted: RW-shared and
 * RO-shared lines never constrain the vCPU map, because requests to
 * those pages are not filtered by the map alone.
 */

#ifndef VSNOOP_MEM_RESIDENCE_HH_
#define VSNOOP_MEM_RESIDENCE_HH_

#include <cstdint>
#include <functional>
#include <vector>

#include "mem/cache.hh"
#include "sim/types.hh"

namespace vsnoop
{

/**
 * Residence counter bank for one cache.
 */
class ResidenceCounters : public CacheObserver
{
  public:
    /**
     * Callback invoked whenever a counter changes.
     *
     * @param vm The VM whose counter moved.
     * @param count The new counter value.
     */
    using ChangeCallback = std::function<void(VmId vm, std::uint64_t count)>;

    /** @param num_vms Number of VMs the bank can track. */
    explicit ResidenceCounters(std::size_t num_vms);

    /** Register the change callback (the vsnoop policy hooks here). */
    void setCallback(ChangeCallback cb) { callback_ = std::move(cb); }

    /** Current count of VM-private lines for @p vm. */
    std::uint64_t count(VmId vm) const;

    /** True when the cache holds no private lines of @p vm. */
    bool empty(VmId vm) const { return count(vm) == 0; }

    void onLineInserted(VmId vm, PageType type) override;
    void onLineRemoved(VmId vm, PageType type) override;

  private:
    std::vector<std::uint64_t> counts_;
    ChangeCallback callback_;
};

} // namespace vsnoop

#endif // VSNOOP_MEM_RESIDENCE_HH_
