#include "mem/addr.hh"

namespace vsnoop
{

const char *
pageTypeName(PageType type)
{
    switch (type) {
      case PageType::VmPrivate:
        return "VM-private";
      case PageType::RwShared:
        return "RW-shared";
      case PageType::RoShared:
        return "RO-shared";
    }
    return "unknown";
}

} // namespace vsnoop
