/**
 * @file
 * Address types and cache/page geometry.
 *
 * The simulator distinguishes guest-physical addresses (what a VM's
 * OS believes is physical memory) from host-physical addresses (real
 * machine addresses assigned by the hypervisor).  Both are plain
 * 64-bit values wrapped in strong types so they cannot be mixed up
 * at compile time.  Caches and the coherence protocol operate on
 * host-physical line addresses.
 *
 * Geometry follows the paper's configuration: 64-byte cache lines
 * and 4 KB pages.
 */

#ifndef VSNOOP_MEM_ADDR_HH_
#define VSNOOP_MEM_ADDR_HH_

#include <compare>
#include <cstdint>
#include <functional>

namespace vsnoop
{

/** Cache line size in bytes (Table II). */
constexpr std::uint64_t kLineBytes = 64;

/** Page size in bytes. */
constexpr std::uint64_t kPageBytes = 4096;

/** Cache lines per page. */
constexpr std::uint64_t kLinesPerPage = kPageBytes / kLineBytes;

/** log2(kLineBytes). */
constexpr unsigned kLineShift = 6;

/** log2(kPageBytes). */
constexpr unsigned kPageShift = 12;

/**
 * Sharing classification of a page, maintained by the hypervisor in
 * shadow/nested page tables (Section IV-A of the paper).  Two unused
 * PTE bits encode this in hardware; the simulator carries it on
 * every memory access.
 */
enum class PageType : std::uint8_t
{
    /** Used by exactly one VM; snoops stay within the vCPU map. */
    VmPrivate,
    /** Writable sharing with the hypervisor or between VMs;
     *  snoops must broadcast. */
    RwShared,
    /** Content-based read-only sharing across VMs; eligible for the
     *  memory-direct / intra-VM / friend-VM optimizations. */
    RoShared,
};

/** Number of PageType values. */
constexpr std::size_t kNumPageTypes = 3;

/** Human-readable name for a PageType. */
const char *pageTypeName(PageType type);

namespace detail
{

/**
 * CRTP strong address wrapper: arithmetic-free, comparable,
 * hashable.  Alignment helpers live here so both address spaces
 * share them.
 */
template <typename Tag>
class StrongAddr
{
  public:
    constexpr StrongAddr() = default;
    constexpr explicit StrongAddr(std::uint64_t raw) : raw_(raw) {}

    constexpr std::uint64_t raw() const { return raw_; }

    /** Address of the containing cache line's first byte. */
    constexpr StrongAddr
    lineAligned() const
    {
        return StrongAddr(raw_ & ~(kLineBytes - 1));
    }

    /** Address of the containing page's first byte. */
    constexpr StrongAddr
    pageAligned() const
    {
        return StrongAddr(raw_ & ~(kPageBytes - 1));
    }

    /** Page number (address >> page shift). */
    constexpr std::uint64_t pageNum() const { return raw_ >> kPageShift; }

    /** Line number (address >> line shift). */
    constexpr std::uint64_t lineNum() const { return raw_ >> kLineShift; }

    /** Byte offset within the page. */
    constexpr std::uint64_t
    pageOffset() const
    {
        return raw_ & (kPageBytes - 1);
    }

    /** Line index within the page. */
    constexpr std::uint64_t
    lineInPage() const
    {
        return pageOffset() >> kLineShift;
    }

    constexpr auto operator<=>(const StrongAddr &) const = default;

  private:
    std::uint64_t raw_ = 0;
};

} // namespace detail

/** Guest-physical address: a VM's view of "physical" memory. */
class GuestAddr : public detail::StrongAddr<GuestAddr>
{
  public:
    using StrongAddr::StrongAddr;
    constexpr GuestAddr(StrongAddr base) : StrongAddr(base) {}
};

/** Host-physical address: the real machine address. */
class HostAddr : public detail::StrongAddr<HostAddr>
{
  public:
    using StrongAddr::StrongAddr;
    constexpr HostAddr(StrongAddr base) : StrongAddr(base) {}
};

/** Build a guest-physical address from a page number and offset. */
constexpr GuestAddr
makeGuestAddr(std::uint64_t page_num, std::uint64_t offset = 0)
{
    return GuestAddr((page_num << kPageShift) | offset);
}

/** Build a host-physical address from a page number and offset. */
constexpr HostAddr
makeHostAddr(std::uint64_t page_num, std::uint64_t offset = 0)
{
    return HostAddr((page_num << kPageShift) | offset);
}

} // namespace vsnoop

namespace std
{

template <>
struct hash<vsnoop::GuestAddr>
{
    size_t
    operator()(const vsnoop::GuestAddr &a) const noexcept
    {
        return std::hash<std::uint64_t>()(a.raw());
    }
};

template <>
struct hash<vsnoop::HostAddr>
{
    size_t
    operator()(const vsnoop::HostAddr &a) const noexcept
    {
        return std::hash<std::uint64_t>()(a.raw());
    }
};

} // namespace std

#endif // VSNOOP_MEM_ADDR_HH_
