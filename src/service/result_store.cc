#include "service/result_store.hh"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <vector>

#include "service/sweep_wire.hh"
#include "sim/logging.hh"
#include "sim/slog.hh"

namespace fs = std::filesystem;

namespace vsnoop
{

namespace
{

bool
readWholeFile(const std::string &path, std::string *out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    out->assign(std::istreambuf_iterator<char>(in),
                std::istreambuf_iterator<char>());
    return in.good() || in.eof();
}

} // namespace

bool
ResultStore::open(const std::string &dir, std::uint64_t maxBytes,
                  std::string *error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    vsnoop_assert(!opened_, "result store opened twice");

    std::error_code ec;
    fs::create_directories(fs::path(dir) / "objects", ec);
    if (ec) {
        if (error)
            *error = "cannot create '" + dir + "': " + ec.message();
        return false;
    }
    dir_ = dir;
    maxBytes_ = maxBytes;

    // The index orders known hashes least-recent first; objects it
    // mentions that are gone are skipped, objects it misses are
    // adopted afterwards (as most recent, since nothing more is
    // known about them).
    std::string index_text;
    if (readWholeFile((fs::path(dir_) / "index").string(),
                      &index_text)) {
        std::size_t pos = 0;
        while (pos < index_text.size()) {
            std::size_t eol = index_text.find('\n', pos);
            if (eol == std::string::npos)
                eol = index_text.size();
            std::string line = index_text.substr(pos, eol - pos);
            pos = eol + 1;
            std::size_t space = line.find(' ');
            if (space == std::string::npos)
                continue;
            std::string hash = line.substr(0, space);
            std::uint64_t size = fs::file_size(objectPath(hash), ec);
            if (ec || entries_.count(hash) != 0)
                continue;
            lru_.push_back(hash);
            entries_[hash] = Entry{size, std::prev(lru_.end())};
            bytes_ += size;
        }
    }
    for (const fs::directory_entry &object :
         fs::directory_iterator(fs::path(dir_) / "objects", ec)) {
        if (!object.is_regular_file())
            continue;
        std::string name = object.path().filename().string();
        // Skip temp files left by a crash mid-put.
        if (name.find(".tmp") != std::string::npos) {
            fs::remove(object.path(), ec);
            continue;
        }
        if (entries_.count(name) != 0)
            continue;
        std::uint64_t size = object.file_size(ec);
        if (ec)
            continue;
        lru_.push_back(name);
        entries_[name] = Entry{size, std::prev(lru_.end())};
        bytes_ += size;
    }

    opened_ = true;
    evictLocked("");
    evictExpiredLocked();
    rewriteIndexLocked();
    return true;
}

void
ResultStore::setMaxAge(std::int64_t seconds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    maxAgeSeconds_ = seconds < 0 ? 0 : seconds;
}

std::int64_t
ResultStore::maxAgeSeconds() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return maxAgeSeconds_;
}

std::size_t
ResultStore::evictExpired()
{
    std::lock_guard<std::mutex> lock(mutex_);
    vsnoop_assert(opened_, "result store used before open()");
    std::size_t evicted = evictExpiredLocked();
    if (evicted > 0)
        rewriteIndexLocked();
    return evicted;
}

std::size_t
ResultStore::evictExpiredLocked()
{
    if (maxAgeSeconds_ <= 0)
        return 0;
    auto now = fs::file_time_type::clock::now();
    // Collect first: dropLocked() mutates entries_ mid-iteration.
    std::vector<std::pair<std::string, std::int64_t>> victims;
    for (const auto &[hash, entry] : entries_) {
        std::error_code ec;
        fs::file_time_type mtime =
            fs::last_write_time(objectPath(hash), ec);
        // An unstattable object is gone anyway; age it out too.
        std::int64_t age =
            ec ? -1
               : std::chrono::duration_cast<std::chrono::seconds>(
                     now - mtime)
                     .count();
        if (ec || age > maxAgeSeconds_)
            victims.emplace_back(hash, age);
    }
    for (const auto &[hash, age] : victims) {
        dropLocked(hash, true);
        ++expired_;
        slog().log(LogLevel::Info, "store_expired",
                   {LogField("object", hash),
                    LogField("age_s", age),
                    LogField("max_age_s", maxAgeSeconds_)});
    }
    return victims.size();
}

std::string
ResultStore::objectPath(const std::string &hash) const
{
    return (fs::path(dir_) / "objects" / hash).string();
}

void
ResultStore::touchLocked(const std::string &hash)
{
    auto it = entries_.find(hash);
    lru_.splice(lru_.end(), lru_, it->second.lruPos);
    it->second.lruPos = std::prev(lru_.end());
}

void
ResultStore::dropLocked(const std::string &hash, bool unlink)
{
    auto it = entries_.find(hash);
    if (it == entries_.end())
        return;
    bytes_ -= it->second.bytes;
    lru_.erase(it->second.lruPos);
    entries_.erase(it);
    if (unlink) {
        std::error_code ec;
        fs::remove(objectPath(hash), ec);
    }
}

void
ResultStore::evictLocked(const std::string &keepHash)
{
    while (bytes_ > maxBytes_ && !lru_.empty()) {
        const std::string &victim = lru_.front();
        if (victim == keepHash)
            break; // never evict the entry just inserted
        dropLocked(victim, true);
        ++evictions_;
    }
}

void
ResultStore::rewriteIndexLocked()
{
    std::string tmp = (fs::path(dir_) / "index.tmp").string();
    std::string final_path = (fs::path(dir_) / "index").string();
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        for (const std::string &hash : lru_)
            out << hash << ' ' << entries_[hash].bytes << '\n';
        if (!out.good()) {
            ++writeFailures_;
            return;
        }
    }
    if (std::rename(tmp.c_str(), final_path.c_str()) != 0)
        ++writeFailures_;
}

std::optional<std::string>
ResultStore::get(const std::string &key)
{
    std::lock_guard<std::mutex> lock(mutex_);
    vsnoop_assert(opened_, "result store used before open()");
    std::string hash = contentHash(key);
    auto it = entries_.find(hash);
    if (it == entries_.end()) {
        ++misses_;
        return std::nullopt;
    }
    std::string content;
    if (!readWholeFile(objectPath(hash), &content)) {
        dropLocked(hash, true);
        ++corrupt_;
        ++misses_;
        rewriteIndexLocked();
        return std::nullopt;
    }
    std::size_t eol = content.find('\n');
    if (eol == std::string::npos || content.compare(0, eol, key) != 0 ||
        eol + 1 >= content.size()) {
        // Torn write, hash collision, or tampering: recompute.
        dropLocked(hash, true);
        ++corrupt_;
        ++misses_;
        rewriteIndexLocked();
        return std::nullopt;
    }
    std::string record = content.substr(eol + 1);
    if (record.back() == '\n')
        record.pop_back();
    ++hits_;
    touchLocked(hash);
    rewriteIndexLocked();
    return record;
}

void
ResultStore::put(const std::string &key, const std::string &record)
{
    std::lock_guard<std::mutex> lock(mutex_);
    vsnoop_assert(opened_, "result store used before open()");
    std::string hash = contentHash(key);

    std::string content = key;
    content += '\n';
    content += record;
    content += '\n';

    // Stage next to the final name so rename() stays same-device
    // atomic; puts are serialized by mutex_, so the name is safe.
    std::string tmp = objectPath(hash) + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out.write(content.data(),
                  static_cast<std::streamsize>(content.size()));
        if (!out.good()) {
            ++writeFailures_;
            std::error_code ec;
            fs::remove(tmp, ec);
            return;
        }
    }
    if (std::rename(tmp.c_str(), objectPath(hash).c_str()) != 0) {
        ++writeFailures_;
        std::error_code ec;
        fs::remove(tmp, ec);
        return;
    }

    dropLocked(hash, false); // replace a colliding entry's accounting
    lru_.push_back(hash);
    entries_[hash] = Entry{content.size(), std::prev(lru_.end())};
    bytes_ += content.size();
    ++insertions_;
    evictLocked(hash);
    rewriteIndexLocked();
}

std::uint64_t
ResultStore::entryCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::uint64_t
ResultStore::totalBytes() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return bytes_;
}

void
ResultStore::registerMetrics(MetricsRegistry &registry)
{
    hitsId_ = registry.addCounter("vsnoop_store_hits_total",
                                  "Result-store cache hits");
    missesId_ = registry.addCounter("vsnoop_store_misses_total",
                                    "Result-store cache misses");
    insertionsId_ =
        registry.addCounter("vsnoop_store_insertions_total",
                            "Records inserted into the result store");
    evictionsId_ =
        registry.addCounter("vsnoop_store_evictions_total",
                            "Records evicted to stay under the byte cap");
    corruptId_ = registry.addCounter(
        "vsnoop_store_corrupt_dropped_total",
        "Entries dropped because their object was missing or torn");
    writeFailuresId_ =
        registry.addCounter("vsnoop_store_write_failures_total",
                            "Failed object or index writes");
    expiredId_ =
        registry.addCounter("vsnoop_store_expired_total",
                            "Records evicted for exceeding the age "
                            "cutoff");
    entriesId_ = registry.addGauge("vsnoop_store_entries",
                                   "Records currently cached");
    bytesId_ = registry.addGauge("vsnoop_store_bytes",
                                 "Bytes of cached objects on disk");
    metricsRegistered_ = true;
}

void
ResultStore::stageMetrics(MetricsRegistry &registry) const
{
    vsnoop_assert(metricsRegistered_,
                  "stageMetrics() before registerMetrics()");
    std::lock_guard<std::mutex> lock(mutex_);
    registry.set(hitsId_, static_cast<double>(hits_));
    registry.set(missesId_, static_cast<double>(misses_));
    registry.set(insertionsId_, static_cast<double>(insertions_));
    registry.set(evictionsId_, static_cast<double>(evictions_));
    registry.set(corruptId_, static_cast<double>(corrupt_));
    registry.set(writeFailuresId_, static_cast<double>(writeFailures_));
    registry.set(expiredId_, static_cast<double>(expired_));
    registry.set(entriesId_, static_cast<double>(entries_.size()));
    registry.set(bytesId_, static_cast<double>(bytes_));
}

} // namespace vsnoop
