#include "service/job_queue.hh"

#include <exception>

#include "service/sweep_wire.hh"
#include "sim/logging.hh"
#include "sim/slog.hh"
#include "system/heartbeat.hh"
#include "system/run_result.hh"
#include "workload/app_profile.hh"

namespace vsnoop
{

const char *
jobStateName(JobState state)
{
    switch (state) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Done: return "done";
      case JobState::Failed: return "failed";
      case JobState::Cancelled: return "cancelled";
    }
    vsnoop_panic("unknown JobState ", static_cast<int>(state));
}

bool
jobStateTerminal(JobState state)
{
    return state == JobState::Done || state == JobState::Failed ||
           state == JobState::Cancelled;
}

JobQueue::JobQueue(ResultStore *store, unsigned runJobs,
                   JobTraceRecorder *trace)
    : store_(store), runJobs_(runJobs), trace_(trace)
{
    dispatcher_ = std::thread(&JobQueue::dispatchLoop, this);
}

JobQueue::~JobQueue()
{
    shutdown();
}

std::uint64_t
JobQueue::submit(const SweepMatrix &matrix, const std::string &label,
                 std::string *error, const std::string &requestId)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return std::uint64_t(0);
    };
    if (matrix.apps.empty() || matrix.policies.empty() ||
        matrix.relocations.empty() || matrix.roPolicies.empty() ||
        matrix.seeds.empty())
        return fail("every sweep axis must be non-empty");
    if (!matrix.traceDir.empty())
        return fail("per-run trace capture is not served; submit "
                    "without a trace directory");

    auto job = std::make_unique<Job>();
    job->matrix = matrix;
    job->points = matrix.expand();
    job->profiles.reserve(job->points.size());
    job->configs.reserve(job->points.size());
    job->cacheKeys.reserve(job->points.size());
    for (const SweepPoint &point : job->points) {
        const AppProfile *profile = tryFindApp(point.app);
        if (profile == nullptr)
            return fail("unknown app '" + point.app + "'");
        job->profiles.push_back(profile);
        job->configs.push_back(matrix.configFor(point));
        job->cacheKeys.push_back(
            runCacheKey(job->configs.back(), point.app));
    }
    job->label = label;
    job->requestId = requestId;
    job->lines.resize(job->points.size());
    job->ready.assign(job->points.size(), 0);
    job->submittedMs =
        static_cast<std::int64_t>(steadyNowMs());

    std::size_t runs = job->points.size();
    std::uint64_t id = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_.load())
            return fail("the service is shutting down");
        job->id = nextId_++;
        id = job->id;
        fifo_.push_back(id);
        jobs_.emplace(id, std::move(job));
        jobsSubmitted_.fetch_add(1);
        dispatchCv_.notify_one();
    }
    slog().log(LogLevel::Info, "job_submitted",
               {LogField("job", id),
                LogField("runs", static_cast<std::uint64_t>(runs)),
                LogField("label", label),
                LogField("request_id", requestId)});
    return id;
}

JobStatus
JobQueue::statusLocked(const Job &job) const
{
    JobStatus s;
    s.id = job.id;
    s.state = job.state;
    s.cancelRequested = job.cancelRequested.load();
    s.runsTotal = job.points.size();
    s.runsCompleted = job.completed;
    s.runsFromCache = job.fromCache;
    s.runsExecuted = job.executed;
    s.label = job.label;
    s.error = job.error;
    s.requestId = job.requestId;
    s.submittedMs = job.submittedMs;
    s.startedMs = job.startedMs;
    s.finishedMs = job.finishedMs;
    return s;
}

std::optional<JobStatus>
JobQueue::status(std::uint64_t id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    return statusLocked(*it->second);
}

std::vector<JobStatus>
JobQueue::list() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<JobStatus> out;
    out.reserve(jobs_.size());
    for (const auto &[id, job] : jobs_)
        out.push_back(statusLocked(*job));
    return out;
}

void
JobQueue::leaveQueuedLocked(const Job &job, std::int64_t endMs)
{
    std::int64_t wait = endMs - job.submittedMs;
    queueWaitHist_.sample(
        static_cast<std::uint64_t>(wait < 0 ? 0 : wait));
    if (trace_ != nullptr)
        trace_->record(JobSpan{job.id, "queue-wait", job.submittedMs,
                               endMs, job.requestId, -1, ""});
}

bool
JobQueue::cancel(std::uint64_t id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    Job &job = *it->second;
    if (job.state == JobState::Queued) {
        // The dispatcher skips non-queued jobs when it pops them.
        job.state = JobState::Cancelled;
        job.cancelRequested.store(true);
        job.finishedMs = static_cast<std::int64_t>(steadyNowMs());
        jobsCancelled_.fetch_add(1);
        leaveQueuedLocked(job, job.finishedMs);
        if (trace_ != nullptr)
            trace_->record(JobInstant{job.id, "cancel",
                                      job.finishedMs, job.requestId,
                                      -1});
        resultCv_.notify_all();
        return true;
    }
    if (job.state == JobState::Running &&
        !job.cancelRequested.exchange(true)) {
        if (trace_ != nullptr)
            trace_->record(JobInstant{
                job.id, "cancel",
                static_cast<std::int64_t>(steadyNowMs()),
                job.requestId, -1});
        return true;
    }
    return false;
}

bool
JobQueue::streamResults(
    std::uint64_t id,
    const std::function<bool(const std::string &line)> &emit)
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    Job &job = *it->second; // jobs are never erased; stays valid
    struct StreamSpan
    {
        JobTraceRecorder *trace;
        JobSpan span;
        ~StreamSpan()
        {
            if (trace == nullptr)
                return;
            span.endMs = static_cast<std::int64_t>(steadyNowMs());
            trace->record(std::move(span));
        }
    } streamSpan{trace_,
                 JobSpan{job.id, "stream",
                         static_cast<std::int64_t>(steadyNowMs()), 0,
                         job.requestId, -1, ""}};
    for (std::size_t i = 0; i < job.ready.size(); ++i) {
        resultCv_.wait(lock, [&] {
            return job.ready[i] != 0 || jobStateTerminal(job.state);
        });
        if (job.ready[i] == 0)
            continue; // terminal with a gap (cancelled mid-sweep)
        // Emit without the lock: the write can block on a slow
        // client, and simulation workers must keep publishing.
        std::string line = job.lines[i];
        lock.unlock();
        bool keep_going = emit(line);
        lock.lock();
        if (!keep_going)
            return true;
    }
    return true;
}

void
JobQueue::dispatchLoop()
{
    for (;;) {
        Job *job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            dispatchCv_.wait(lock, [&] {
                return !fifo_.empty() || stopping_.load();
            });
            if (stopping_.load())
                return; // queued jobs were marked cancelled
            std::uint64_t id = fifo_.front();
            fifo_.pop_front();
            Job &candidate = *jobs_.at(id);
            if (candidate.state != JobState::Queued)
                continue; // cancelled while waiting its turn
            candidate.state = JobState::Running;
            candidate.startedMs =
                static_cast<std::int64_t>(steadyNowMs());
            leaveQueuedLocked(candidate, candidate.startedMs);
            job = &candidate;
        }
        execute(*job);
    }
}

void
JobQueue::execute(Job &job)
{
    std::size_t total = job.points.size();
    auto finish = [&](JobState state, const std::string &error) {
        std::size_t completed;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            job.state = state;
            job.error = error;
            job.finishedMs = static_cast<std::int64_t>(steadyNowMs());
            completed = job.completed;
            switch (state) {
              case JobState::Done: jobsCompleted_.fetch_add(1); break;
              case JobState::Failed: jobsFailed_.fetch_add(1); break;
              case JobState::Cancelled:
                jobsCancelled_.fetch_add(1);
                break;
              default: vsnoop_panic("non-terminal finish state");
            }
            resultCv_.notify_all();
        }
        // The execute span starts exactly where queue-wait ended,
        // so the two tile [submitted, finished]: per-job spans sum
        // to the job's submit-to-done latency by construction.
        if (trace_ != nullptr)
            trace_->record(JobSpan{job.id, "execute", job.startedMs,
                                   job.finishedMs, job.requestId, -1,
                                   jobStateName(state)});
        slog().log(
            state == JobState::Failed ? LogLevel::Warn
                                      : LogLevel::Info,
            "job_finished",
            {LogField("job", job.id),
             LogField("state", jobStateName(state)),
             LogField("runs_completed",
                      static_cast<std::uint64_t>(completed)),
             LogField("error", error),
             LogField("request_id", job.requestId)});
    };

    try {
        // Cache pass first: hits complete instantly and never
        // occupy a worker, so a fully warm matrix finishes without
        // simulating anything.
        std::vector<std::size_t> miss_slots;
        for (std::size_t i = 0; i < total; ++i) {
            std::optional<std::string> cached =
                store_ != nullptr
                    ? store_->get(job.cacheKeys[i])
                    : std::nullopt;
            if (trace_ != nullptr)
                trace_->record(JobInstant{
                    job.id, cached ? "cache-hit" : "cache-miss",
                    static_cast<std::int64_t>(steadyNowMs()),
                    job.requestId, static_cast<std::int64_t>(i)});
            if (cached) {
                std::lock_guard<std::mutex> lock(mutex_);
                job.lines[i] = std::move(*cached);
                job.ready[i] = 1;
                ++job.completed;
                ++job.fromCache;
                runsFromCache_.fetch_add(1);
                resultCv_.notify_all();
            } else {
                miss_slots.push_back(i);
            }
        }

        auto cancelled = [&] {
            return job.cancelRequested.load() || stopping_.load();
        };
        runIndexed(
            miss_slots.size(), runJobs_,
            [&](std::size_t k) {
                std::size_t slot = miss_slots[k];
                std::int64_t begin =
                    static_cast<std::int64_t>(steadyNowMs());
                RunResult result = collectRun(job.configs[slot],
                                              *job.profiles[slot]);
                if (result.results.perf.enabled)
                    perf_.add(result.results.perf);
                if (result.results.pages.enabled)
                    pages_.add(result.results.pages);
                std::string line = result.toJson();
                if (store_ != nullptr)
                    store_->put(job.cacheKeys[slot], line);
                std::int64_t end =
                    static_cast<std::int64_t>(steadyNowMs());
                if (trace_ != nullptr)
                    trace_->record(JobSpan{
                        job.id, "run", begin, end, job.requestId,
                        static_cast<std::int64_t>(slot),
                        job.points[slot].app});
                std::lock_guard<std::mutex> lock(mutex_);
                runExecuteHist_.sample(
                    static_cast<std::uint64_t>(end - begin));
                job.lines[slot] = std::move(line);
                job.ready[slot] = 1;
                ++job.completed;
                ++job.executed;
                runsExecuted_.fetch_add(1);
                resultCv_.notify_all();
            },
            cancelled);

        bool complete;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            complete = job.completed == total;
        }
        if (!complete && cancelled())
            finish(JobState::Cancelled, "");
        else
            finish(JobState::Done, "");
    } catch (const std::exception &e) {
        finish(JobState::Failed, e.what());
    } catch (...) {
        finish(JobState::Failed, "unknown execution error");
    }
}

void
JobQueue::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (shutdownDone_)
            return;
        shutdownDone_ = true;
        stopping_.store(true);
        std::int64_t now = static_cast<std::int64_t>(steadyNowMs());
        for (std::uint64_t id : fifo_) {
            Job &job = *jobs_.at(id);
            if (job.state != JobState::Queued)
                continue;
            job.state = JobState::Cancelled;
            job.cancelRequested.store(true);
            job.finishedMs = now;
            jobsCancelled_.fetch_add(1);
            leaveQueuedLocked(job, now);
        }
        fifo_.clear();
        dispatchCv_.notify_all();
        resultCv_.notify_all();
    }
    if (dispatcher_.joinable())
        dispatcher_.join();
}

void
JobQueue::registerMetrics(MetricsRegistry &registry)
{
    submittedId_ = registry.addCounter("vsnoop_jobs_submitted_total",
                                       "Sweep jobs accepted");
    completedId_ = registry.addCounter("vsnoop_jobs_completed_total",
                                       "Sweep jobs finished (done)");
    failedId_ = registry.addCounter("vsnoop_jobs_failed_total",
                                    "Sweep jobs finished (failed)");
    cancelledId_ = registry.addCounter("vsnoop_jobs_cancelled_total",
                                       "Sweep jobs cancelled");
    executedId_ =
        registry.addCounter("vsnoop_job_runs_executed_total",
                            "Runs simulated on behalf of jobs");
    fromCacheId_ =
        registry.addCounter("vsnoop_job_runs_from_cache_total",
                            "Runs served from the result store");
    queuedGaugeId_ = registry.addGauge("vsnoop_jobs_queued",
                                       "Jobs waiting to run");
    runningGaugeId_ = registry.addGauge("vsnoop_jobs_running",
                                        "Jobs currently executing");
    // Sampled whenever a job leaves Queued, so once every job is
    // terminal this histogram's _count equals
    // vsnoop_jobs_submitted_total.
    queueWaitHistId_ = registry.addHistogram(
        "vsnoop_job_queue_wait_ms",
        "Milliseconds jobs spent queued before dispatch "
        "(or cancellation)");
    // One sample per simulated run; _count equals
    // vsnoop_job_runs_executed_total.
    runExecuteHistId_ = registry.addHistogram(
        "vsnoop_job_run_execute_ms",
        "Milliseconds per executed run, simulation plus store "
        "insert");
    perf_.registerMetrics(registry);
    pages_.registerMetrics(registry);
    metricsRegistered_ = true;
}

void
JobQueue::stageMetrics(MetricsRegistry &registry) const
{
    vsnoop_assert(metricsRegistered_,
                  "stageMetrics() before registerMetrics()");
    std::size_t queued = 0, running = 0;
    LatencyHistogram queueWait, runExecute;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[id, job] : jobs_) {
            if (job->state == JobState::Queued)
                ++queued;
            else if (job->state == JobState::Running)
                ++running;
        }
        queueWait = queueWaitHist_;
        runExecute = runExecuteHist_;
    }
    registry.set(submittedId_, static_cast<double>(jobsSubmitted()));
    registry.set(completedId_, static_cast<double>(jobsCompleted()));
    registry.set(failedId_, static_cast<double>(jobsFailed()));
    registry.set(cancelledId_, static_cast<double>(jobsCancelled()));
    registry.set(executedId_, static_cast<double>(runsExecuted()));
    registry.set(fromCacheId_, static_cast<double>(runsFromCache()));
    registry.set(queuedGaugeId_, static_cast<double>(queued));
    registry.set(runningGaugeId_, static_cast<double>(running));
    registry.setHistogram(queueWaitHistId_, queueWait);
    registry.setHistogram(runExecuteHistId_, runExecute);
    perf_.stageMetrics(registry);
    pages_.stageMetrics(registry);
}

} // namespace vsnoop
