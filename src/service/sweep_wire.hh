/**
 * @file
 * Wire format for sweep submissions and content-addressed run keys.
 *
 * The job API (src/service/job_api.hh) accepts a sweep matrix as
 * one JSON object; this header owns that format and the canonical
 * cache key the ResultStore is addressed by.  The "config" object
 * of a submission uses exactly the key names of the "config" block
 * in run records (system/run_result.cc), so a config copied out of
 * archived sweep output resubmits as-is.  Unknown config keys are
 * rejected rather than ignored — a typoed knob silently falling
 * back to a default would poison the cache with mislabeled runs.
 *
 * The cache key is a canonical compact JSON rendering of everything
 * that can change a run record's bytes: the full resolved
 * SystemConfig (every field, not just the wire-settable ones), the
 * app name, the seed, and the build provenance (tool version + git
 * describe), so a rebuild after a source change never serves stale
 * results.  Keys hash to 32 lowercase hex characters (two
 * independent 64-bit FNV-1a passes) for use as object file names.
 */

#ifndef VSNOOP_SERVICE_SWEEP_WIRE_HH_
#define VSNOOP_SERVICE_SWEEP_WIRE_HH_

#include <string>
#include <string_view>

#include "system/sweep.hh"

namespace vsnoop
{

class JsonValue;

/**
 * One parsed job submission: the matrix to run plus an optional
 * client-supplied label echoed back in job status.
 */
struct SweepRequest
{
    SweepMatrix matrix;
    std::string label;
};

/**
 * @{ Parse a CLI/JSON token into the matching enum; false (output
 * untouched) on an unknown token.  Tokens are the run-record values
 * ("tokenb" | "vsnoop" | "region", "base" | "counter" |
 * "counter-threshold" | "counter-flush", "broadcast" |
 * "memory-direct" | "intra-vm" | "friend-vm").
 */
bool parsePolicyToken(const std::string &token, PolicyKind *out);
bool parseRelocationToken(const std::string &token, RelocationMode *out);
bool parseRoPolicyToken(const std::string &token, RoPolicy *out);
/** @} */

/**
 * Serialize @p matrix (and an optional @p label) as a submission
 * document: {"apps":[...],"policies":[...],"relocations":[...],
 * "ro_policies":[...],"seeds":[...],"label":...,"config":{...}}.
 * Every config key is written, so parse(serialize(m)) reproduces
 * the matrix exactly.
 */
std::string writeSweepRequestJson(const SweepMatrix &matrix,
                                  const std::string &label = "");

/**
 * Parse a submission document into @p out.  Returns false with a
 * one-line @p error on a malformed document: missing/empty "apps",
 * an unknown app name, a bad enum token, an unknown config key, a
 * mistyped value, or a config the simulator would reject (zero
 * mesh, more vCPUs than cores, ...).  Absent axes keep SweepMatrix
 * defaults; absent config keys keep SystemConfig defaults.
 */
bool parseSweepRequest(const JsonValue &root, SweepRequest *out,
                       std::string *error);

/**
 * The canonical identity of one run: compact JSON over the full
 * resolved config + app + seed + build provenance (see file
 * comment).  Equal keys imply byte-identical run records.
 */
std::string runCacheKey(const SystemConfig &config,
                        const std::string &app);

/** 32-hex-char content hash of @p text (2x 64-bit FNV-1a). */
std::string contentHash(std::string_view text);

} // namespace vsnoop

#endif // VSNOOP_SERVICE_SWEEP_WIRE_HH_
