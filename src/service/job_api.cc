#include "service/job_api.hh"

#include <cstdlib>

#include "service/job_queue.hh"
#include "service/sweep_wire.hh"
#include "sim/json.hh"
#include "sim/stats_server.hh"

namespace vsnoop
{

namespace
{

HttpResponse
jsonResponse(int status, const std::string &body)
{
    HttpResponse resp;
    resp.status = status;
    resp.contentType = "application/json";
    resp.body = body;
    return resp;
}

HttpResponse
errorResponse(int status, const std::string &message)
{
    JsonWriter json;
    json.beginObject();
    json.key("error").value(message);
    json.endObject();
    return jsonResponse(status, json.str() + "\n");
}

void
writeStatus(JsonWriter &json, const JobStatus &s)
{
    json.beginObject();
    json.key("job").value(s.id);
    json.key("state").value(jobStateName(s.state));
    json.key("cancel_requested").value(s.cancelRequested);
    json.key("runs_total")
        .value(static_cast<std::uint64_t>(s.runsTotal));
    json.key("runs_completed")
        .value(static_cast<std::uint64_t>(s.runsCompleted));
    json.key("runs_from_cache")
        .value(static_cast<std::uint64_t>(s.runsFromCache));
    json.key("runs_executed")
        .value(static_cast<std::uint64_t>(s.runsExecuted));
    json.key("label").value(s.label);
    json.key("error").value(s.error);
    json.key("request_id").value(s.requestId);
    json.key("submitted_ms").value(s.submittedMs);
    json.key("started_ms").value(s.startedMs);
    json.key("finished_ms").value(s.finishedMs);
    json.endObject();
}

/**
 * Split "/jobs/<id>[/suffix]" after the prefix.  Returns false
 * unless <id> is a plain decimal number.
 */
bool
parseJobPath(const std::string &path, std::uint64_t *id,
             std::string *suffix)
{
    const std::string prefix = "/jobs/";
    if (path.compare(0, prefix.size(), prefix) != 0)
        return false;
    std::size_t pos = prefix.size();
    std::size_t end = pos;
    while (end < path.size() && path[end] >= '0' && path[end] <= '9')
        ++end;
    if (end == pos)
        return false;
    *id = std::strtoull(path.substr(pos, end - pos).c_str(),
                        nullptr, 10);
    *suffix = path.substr(end);
    return true;
}

} // namespace

void
registerJobRoutes(StatsServer &server, JobQueue &queue)
{
    server.routePrefix(
        "POST", "/jobs", [&queue](const HttpRequest &request) {
            if (request.path != "/jobs")
                return errorResponse(404, "POST is only accepted at "
                                          "/jobs");
            std::string parse_error;
            std::optional<JsonValue> doc =
                parseJson(request.body, &parse_error);
            if (!doc)
                return errorResponse(400, "invalid JSON: " +
                                              parse_error);
            SweepRequest req;
            if (!parseSweepRequest(*doc, &req, &parse_error))
                return errorResponse(400, parse_error);
            std::string submit_error;
            std::uint64_t id =
                queue.submit(req.matrix, req.label, &submit_error,
                             request.requestId);
            if (id == 0)
                return errorResponse(400, submit_error);
            JsonWriter json;
            json.beginObject();
            json.key("job").value(id);
            json.key("state").value("queued");
            json.key("runs_total")
                .value(static_cast<std::uint64_t>(
                    req.matrix.runCount()));
            json.key("request_id").value(request.requestId);
            json.endObject();
            return jsonResponse(200, json.str() + "\n");
        });

    server.routePrefix(
        "GET", "/jobs", [&queue](const HttpRequest &request) {
            if (request.path == "/jobs") {
                JsonWriter json;
                json.beginObject();
                json.key("jobs").beginArray();
                for (const JobStatus &s : queue.list())
                    writeStatus(json, s);
                json.endArray();
                json.endObject();
                return jsonResponse(200, json.str() + "\n");
            }
            std::uint64_t id = 0;
            std::string suffix;
            if (!parseJobPath(request.path, &id, &suffix))
                return errorResponse(404, "expected /jobs/<id>");
            if (suffix.empty()) {
                std::optional<JobStatus> s = queue.status(id);
                if (!s)
                    return errorResponse(404, "no job " +
                                                  std::to_string(id));
                JsonWriter json;
                writeStatus(json, *s);
                return jsonResponse(200, json.str() + "\n");
            }
            if (suffix == "/results") {
                if (!queue.status(id))
                    return errorResponse(404, "no job " +
                                                  std::to_string(id));
                HttpResponse resp;
                resp.contentType = "application/x-ndjson";
                resp.stream = [&queue, id](const ChunkWriter &write) {
                    queue.streamResults(
                        id, [&](const std::string &line) {
                            return write(line + "\n");
                        });
                };
                return resp;
            }
            return errorResponse(404, "unknown job resource '" +
                                          suffix + "'");
        });

    server.routePrefix(
        "DELETE", "/jobs", [&queue](const HttpRequest &request) {
            std::uint64_t id = 0;
            std::string suffix;
            if (!parseJobPath(request.path, &id, &suffix) ||
                !suffix.empty())
                return errorResponse(404, "expected DELETE "
                                          "/jobs/<id>");
            std::optional<JobStatus> before = queue.status(id);
            if (!before)
                return errorResponse(404,
                                     "no job " + std::to_string(id));
            bool initiated = queue.cancel(id);
            std::optional<JobStatus> after = queue.status(id);
            JsonWriter json;
            json.beginObject();
            json.key("job").value(id);
            json.key("cancelled").value(initiated);
            json.key("state").value(
                jobStateName(after ? after->state : before->state));
            json.endObject();
            return jsonResponse(200, json.str() + "\n");
        });
}

} // namespace vsnoop
