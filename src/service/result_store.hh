/**
 * @file
 * On-disk content-addressed cache of finished run records.
 *
 * The serving shape the ROADMAP targets — many clients asking
 * what-if questions against mostly-repeated configurations — only
 * works if a finished run is never recomputed.  Byte-identical
 * determinism (PR 1) makes that safe: a run record is a pure
 * function of its canonical cache key (service/sweep_wire.hh:
 * full resolved config + app + seed + build provenance), so the
 * store can hand back cached bytes as if the run had just executed.
 *
 * Layout under the store directory:
 *  - objects/<hash>   one entry: line 1 is the canonical key, the
 *    rest is the run's JSON record.  Written to a temp file and
 *    rename()d into place, so readers never observe a torn entry
 *    and a crash leaves at most an orphaned temp file.
 *  - index            "<hash> <bytes>" per line, least-recently
 *    used first; rewritten after every mutation.  Purely an LRU
 *    ordering hint — open() re-stats every object and adopts
 *    objects missing from the index, so losing it costs only
 *    recency information, never entries.
 *
 * Eviction is by total object bytes (maxBytes), least-recently-used
 * first; the entry just inserted is never evicted even when it
 * alone exceeds the cap.  Independently, setMaxAge() bounds how
 * long an object may live since it was written: evictExpired()
 * (run at open() and periodically by the serving loop) drops every
 * object whose file mtime is older than the cutoff, regardless of
 * recency of use — a sweep result computed by a stale build ages
 * out even while it keeps getting hits.  A get() whose object is missing, torn,
 * or keyed differently than requested (hash collision or manual
 * tampering) drops the entry and reports a miss — corruption heals
 * by recomputation, never by serving wrong bytes.
 *
 * All operations are serialized by an internal mutex; the store is
 * safe to share between HTTP workers and sweep workers.
 */

#ifndef VSNOOP_SERVICE_RESULT_STORE_HH_
#define VSNOOP_SERVICE_RESULT_STORE_HH_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "sim/metrics.hh"

namespace vsnoop
{

class ResultStore
{
  public:
    ResultStore() = default;

    ResultStore(const ResultStore &) = delete;
    ResultStore &operator=(const ResultStore &) = delete;

    /**
     * Bind the store to @p dir (created if absent), load the index,
     * adopt any orphaned objects, and evict down to @p maxBytes.
     * Returns false with @p error set when the directory cannot be
     * created or read.  Must be called (successfully) before
     * get()/put().
     */
    bool open(const std::string &dir, std::uint64_t maxBytes,
              std::string *error = nullptr);

    /**
     * The record stored under @p key (a canonical runCacheKey()
     * string, not a hash), or nullopt.  Counts one hit or one miss;
     * a hit refreshes the entry's recency.
     */
    std::optional<std::string> get(const std::string &key);

    /**
     * Store @p record under @p key; overwrites a hash-colliding
     * entry, refreshes recency, then evicts LRU entries while over
     * the byte cap.  Failures to write (disk full, permissions) are
     * counted and the entry is dropped — the cache stays a cache.
     */
    void put(const std::string &key, const std::string &record);

    /**
     * Age cutoff for evictExpired(), in seconds since the object
     * file was written; 0 (the default) disables age GC.  Set
     * before open() so the opening scan already applies it.
     */
    void setMaxAge(std::int64_t seconds);
    std::int64_t maxAgeSeconds() const;

    /**
     * Drop every object older than the cutoff (one structured
     * "store_expired" log line each).  Returns how many were
     * evicted; 0 when age GC is disabled.
     */
    std::size_t evictExpired();

    /** Entries evicted by age (evictExpired()) since open(). */
    std::uint64_t expired() const { return expired_.load(); }

    /** @{ Counters since open(). */
    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::uint64_t insertions() const { return insertions_.load(); }
    std::uint64_t evictions() const { return evictions_.load(); }
    /** Entries dropped because their object was missing/torn. */
    std::uint64_t corruptDropped() const { return corrupt_.load(); }
    std::uint64_t writeFailures() const
    {
        return writeFailures_.load();
    }
    /** @} */

    /** @{ Current occupancy. */
    std::uint64_t entryCount() const;
    std::uint64_t totalBytes() const;
    /** @} */

    /**
     * Register the store's series with @p registry (before its
     * freeze()).  stageMetrics() then stages current values; the
     * caller owns publish() (single-publisher seqlock contract).
     */
    void registerMetrics(MetricsRegistry &registry);
    void stageMetrics(MetricsRegistry &registry) const;

  private:
    struct Entry
    {
        std::uint64_t bytes = 0;
        /** Position in lru_ (front = least recently used). */
        std::list<std::string>::iterator lruPos;
    };

    std::string objectPath(const std::string &hash) const;
    std::size_t evictExpiredLocked();
    void touchLocked(const std::string &hash);
    void dropLocked(const std::string &hash, bool unlink);
    void evictLocked(const std::string &keepHash);
    void rewriteIndexLocked();

    mutable std::mutex mutex_;
    std::string dir_;
    std::uint64_t maxBytes_ = 0;
    std::int64_t maxAgeSeconds_ = 0;
    bool opened_ = false;
    /** hash -> entry; lru_ holds hashes, least recent first. */
    std::unordered_map<std::string, Entry> entries_;
    std::list<std::string> lru_;
    std::uint64_t bytes_ = 0;

    /** Mutated under mutex_; atomic so accessors can skip it. */
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> misses_{0};
    std::atomic<std::uint64_t> insertions_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> corrupt_{0};
    std::atomic<std::uint64_t> writeFailures_{0};
    std::atomic<std::uint64_t> expired_{0};

    /** Metric ids (valid after registerMetrics()). */
    MetricsRegistry::Id hitsId_ = 0, missesId_ = 0, insertionsId_ = 0,
                        evictionsId_ = 0, corruptId_ = 0,
                        writeFailuresId_ = 0, entriesId_ = 0,
                        bytesId_ = 0, expiredId_ = 0;
    bool metricsRegistered_ = false;
};

} // namespace vsnoop

#endif // VSNOOP_SERVICE_RESULT_STORE_HH_
