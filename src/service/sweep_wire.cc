#include "service/sweep_wire.hh"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <type_traits>

#include "mem/addr.hh"
#include "sim/json.hh"
#include "sim/version.hh"
#include "virt/sched_sim.hh"
#include "workload/app_profile.hh"

namespace vsnoop
{

bool
parsePolicyToken(const std::string &token, PolicyKind *out)
{
    if (token == "tokenb")
        *out = PolicyKind::TokenB;
    else if (token == "vsnoop")
        *out = PolicyKind::VirtualSnoop;
    else if (token == "region")
        *out = PolicyKind::IdealRegionFilter;
    else
        return false;
    return true;
}

bool
parseRelocationToken(const std::string &token, RelocationMode *out)
{
    if (token == "base")
        *out = RelocationMode::Base;
    else if (token == "counter")
        *out = RelocationMode::Counter;
    else if (token == "counter-threshold")
        *out = RelocationMode::CounterThreshold;
    else if (token == "counter-flush")
        *out = RelocationMode::CounterFlush;
    else
        return false;
    return true;
}

bool
parseRoPolicyToken(const std::string &token, RoPolicy *out)
{
    if (token == "broadcast")
        *out = RoPolicy::Broadcast;
    else if (token == "memory-direct")
        *out = RoPolicy::MemoryDirect;
    else if (token == "intra-vm")
        *out = RoPolicy::IntraVm;
    else if (token == "friend-vm")
        *out = RoPolicy::FriendVm;
    else
        return false;
    return true;
}

namespace
{

/**
 * The wire-settable configuration, in run-record order.  Shared by
 * the serializer and the parser so the two cannot drift.
 */
void
writeWireConfig(JsonWriter &json, const SystemConfig &c)
{
    json.key("config").beginObject();
    json.key("mesh_width").value(c.mesh.width);
    json.key("mesh_height").value(c.mesh.height);
    json.key("ideal_network").value(c.idealNetwork);
    json.key("vms").value(c.numVms);
    json.key("vcpus_per_vm").value(c.vcpusPerVm);
    json.key("l2_bytes").value(c.l2.sizeBytes);
    json.key("l1_bytes").value(c.l2.l1SizeBytes);
    json.key("accesses_per_vcpu").value(c.accessesPerVcpu);
    json.key("warmup_accesses_per_vcpu").value(c.warmupAccessesPerVcpu);
    json.key("migration_period").value(c.migrationPeriod);
    json.key("counter_threshold").value(c.vsnoop.counterThreshold);
    json.key("region_bytes").value(c.regionBytes);
    json.key("crossbar_latency").value(c.crossbarLatency);
    json.key("link_bytes").value(c.mesh.linkBytes);
    json.key("router_pipeline").value(c.mesh.routerPipeline);
    json.key("link_latency").value(c.mesh.linkLatency);
    json.key("l1_latency").value(c.protocol.l1Latency);
    json.key("l2_latency").value(c.protocol.l2Latency);
    json.key("mem_latency").value(c.protocol.memLatency);
    json.key("retry_window").value(c.protocol.retryWindow);
    json.key("max_transient_attempts")
        .value(c.protocol.maxTransientAttempts);
    json.key("persistent_window").value(c.protocol.persistentWindow);
    json.key("broadcast_attempt").value(c.vsnoop.broadcastAttempt);
    json.key("map_sync_bytes").value(c.vsnoop.mapSyncBytes);
    json.key("ro_token_bundle").value(c.vsnoop.roTokenBundle);
    json.key("content_scan").value(c.contentScan);
    json.key("content_scan_period").value(c.contentScanPeriod);
    json.key("timeseries_interval").value(c.timeseriesInterval);
    json.key("tag_lookup_cycles").value(c.protocol.tagLookupCycles);
    json.key("perf").value(c.perf);
    json.key("perf_sample_interval").value(c.perfSampleInterval);
    json.key("pages").value(c.pages);
    json.key("pages_top").value(c.pagesTop);
    json.endObject();
}

bool
toU64(const JsonValue &v, std::uint64_t *out)
{
    if (!v.isNumber())
        return false;
    double d = v.number();
    // 2^53: the largest range where doubles hold integers exactly.
    if (d < 0 || d != std::floor(d) || d > 9007199254740992.0)
        return false;
    *out = static_cast<std::uint64_t>(d);
    return true;
}

bool
toU32(const JsonValue &v, std::uint32_t *out)
{
    std::uint64_t u;
    if (!toU64(v, &u) || u > 0xffffffffull)
        return false;
    *out = static_cast<std::uint32_t>(u);
    return true;
}

bool
toBool(const JsonValue &v, bool *out)
{
    if (v.kind() != JsonValue::Kind::Bool)
        return false;
    *out = v.boolean();
    return true;
}

bool
applyConfigMember(const std::string &key, const JsonValue &v,
                  SystemConfig *c)
{
    if (key == "mesh_width") return toU32(v, &c->mesh.width);
    if (key == "mesh_height") return toU32(v, &c->mesh.height);
    if (key == "ideal_network") return toBool(v, &c->idealNetwork);
    if (key == "vms") return toU32(v, &c->numVms);
    if (key == "vcpus_per_vm") return toU32(v, &c->vcpusPerVm);
    if (key == "l2_bytes") return toU64(v, &c->l2.sizeBytes);
    if (key == "l1_bytes") return toU64(v, &c->l2.l1SizeBytes);
    if (key == "accesses_per_vcpu")
        return toU64(v, &c->accessesPerVcpu);
    if (key == "warmup_accesses_per_vcpu")
        return toU64(v, &c->warmupAccessesPerVcpu);
    if (key == "migration_period")
        return toU64(v, &c->migrationPeriod);
    if (key == "counter_threshold")
        return toU64(v, &c->vsnoop.counterThreshold);
    if (key == "region_bytes") return toU64(v, &c->regionBytes);
    if (key == "crossbar_latency")
        return toU64(v, &c->crossbarLatency);
    if (key == "link_bytes") return toU32(v, &c->mesh.linkBytes);
    if (key == "router_pipeline")
        return toU64(v, &c->mesh.routerPipeline);
    if (key == "link_latency") return toU64(v, &c->mesh.linkLatency);
    if (key == "l1_latency") return toU64(v, &c->protocol.l1Latency);
    if (key == "l2_latency") return toU64(v, &c->protocol.l2Latency);
    if (key == "mem_latency") return toU64(v, &c->protocol.memLatency);
    if (key == "retry_window")
        return toU64(v, &c->protocol.retryWindow);
    if (key == "max_transient_attempts")
        return toU32(v, &c->protocol.maxTransientAttempts);
    if (key == "persistent_window")
        return toU64(v, &c->protocol.persistentWindow);
    if (key == "broadcast_attempt")
        return toU32(v, &c->vsnoop.broadcastAttempt);
    if (key == "map_sync_bytes")
        return toU32(v, &c->vsnoop.mapSyncBytes);
    if (key == "ro_token_bundle")
        return toU32(v, &c->vsnoop.roTokenBundle);
    if (key == "content_scan") return toBool(v, &c->contentScan);
    if (key == "content_scan_period")
        return toU64(v, &c->contentScanPeriod);
    if (key == "timeseries_interval")
        return toU64(v, &c->timeseriesInterval);
    if (key == "tag_lookup_cycles")
        return toU64(v, &c->protocol.tagLookupCycles);
    if (key == "perf") return toBool(v, &c->perf);
    if (key == "perf_sample_interval")
        return toU64(v, &c->perfSampleInterval);
    if (key == "pages") return toBool(v, &c->pages);
    if (key == "pages_top") {
        if (!toU32(v, &c->pagesTop) || c->pagesTop == 0)
            return false;
        return true;
    }
    return false;
}

bool
isKnownConfigKey(const std::string &key)
{
    // applyConfigMember() cannot distinguish "unknown key" from
    // "known key, wrong type", so known keys are listed explicitly
    // (same order as the serializer).
    static const char *const kKeys[] = {
        "mesh_width", "mesh_height", "ideal_network", "vms",
        "vcpus_per_vm", "l2_bytes", "l1_bytes", "accesses_per_vcpu",
        "warmup_accesses_per_vcpu", "migration_period",
        "counter_threshold", "region_bytes", "crossbar_latency",
        "link_bytes", "router_pipeline", "link_latency", "l1_latency",
        "l2_latency", "mem_latency", "retry_window",
        "max_transient_attempts", "persistent_window",
        "broadcast_attempt", "map_sync_bytes", "ro_token_bundle",
        "content_scan", "content_scan_period", "timeseries_interval",
        "tag_lookup_cycles", "perf", "perf_sample_interval",
        "pages", "pages_top",
    };
    for (const char *known : kKeys)
        if (key == known)
            return true;
    return false;
}

/**
 * Reject configurations the simulator would abort on (its
 * constructors assert), plus service-level sanity bounds, before
 * they reach a worker thread.
 */
bool
validateConfig(const SystemConfig &c, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    if (c.mesh.width < 1 || c.mesh.height < 1)
        return fail("mesh_width and mesh_height must be at least 1");
    if (c.mesh.width > 64 || c.mesh.height > 64)
        return fail("mesh dimensions above 64x64 are not served");
    if (c.mesh.linkBytes < 1)
        return fail("link_bytes must be at least 1");
    if (c.numVms < 1 || c.vcpusPerVm < 1)
        return fail("vms and vcpus_per_vm must be at least 1");
    std::uint64_t vcpus =
        std::uint64_t(c.numVms) * std::uint64_t(c.vcpusPerVm);
    if (vcpus > c.numCores())
        return fail("overcommitted: " + std::to_string(vcpus) +
                    " vCPUs on " + std::to_string(c.numCores()) +
                    " cores");
    // The L2 asserts lines >= ways and lines % ways == 0.
    std::uint64_t l2_granule = kLineBytes * 8 /* ways */;
    if (c.l2.sizeBytes < l2_granule || c.l2.sizeBytes % l2_granule != 0)
        return fail("l2_bytes must be a positive multiple of " +
                    std::to_string(l2_granule));
    std::uint64_t l1_granule = kLineBytes * 4 /* l1 ways */;
    if (c.l2.l1SizeBytes != 0 &&
        (c.l2.l1SizeBytes < l1_granule ||
         c.l2.l1SizeBytes % l1_granule != 0))
        return fail("l1_bytes must be 0 or a positive multiple of " +
                    std::to_string(l1_granule));
    if (c.regionBytes < kLineBytes)
        return fail("region_bytes must be at least " +
                    std::to_string(kLineBytes));
    if (c.accessesPerVcpu < 1)
        return fail("accesses_per_vcpu must be at least 1");
    return true;
}

} // namespace

std::string
writeSweepRequestJson(const SweepMatrix &matrix, const std::string &label)
{
    JsonWriter json;
    json.beginObject();
    json.key("apps").beginArray();
    for (const std::string &app : matrix.apps)
        json.value(app);
    json.endArray();
    json.key("policies").beginArray();
    for (PolicyKind policy : matrix.policies)
        json.value(policyKindName(policy));
    json.endArray();
    json.key("relocations").beginArray();
    for (RelocationMode mode : matrix.relocations)
        json.value(relocationModeToken(mode));
    json.endArray();
    json.key("ro_policies").beginArray();
    for (RoPolicy policy : matrix.roPolicies)
        json.value(roPolicyToken(policy));
    json.endArray();
    json.key("seeds").beginArray();
    for (std::uint64_t seed : matrix.seeds)
        json.value(seed);
    json.endArray();
    if (!label.empty())
        json.key("label").value(label);
    writeWireConfig(json, matrix.base);
    json.endObject();
    return json.str();
}

bool
parseSweepRequest(const JsonValue &root, SweepRequest *out,
                  std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    if (!root.isObject())
        return fail("submission must be a JSON object");

    SweepRequest req;
    const JsonValue *apps = root.find("apps");
    if (apps == nullptr || !apps->isArray() || apps->items().empty())
        return fail("\"apps\" must be a non-empty array of app names");
    req.matrix.apps.clear();
    for (const JsonValue &item : apps->items()) {
        if (!item.isString())
            return fail("\"apps\" entries must be strings");
        if (tryFindApp(item.string()) == nullptr)
            return fail("unknown app '" + item.string() + "'");
        req.matrix.apps.push_back(item.string());
    }

    auto parseAxis = [&](const char *name, auto parseToken,
                         auto *axis) {
        const JsonValue *node = root.find(name);
        if (node == nullptr)
            return true; // keep the SweepMatrix default
        if (!node->isArray() || node->items().empty()) {
            return fail(std::string("\"") + name +
                        "\" must be a non-empty array");
        }
        axis->clear();
        for (const JsonValue &item : node->items()) {
            if (!item.isString())
                return fail(std::string("\"") + name +
                            "\" entries must be strings");
            typename std::remove_reference_t<decltype(*axis)>::
                value_type value{};
            if (!parseToken(item.string(), &value))
                return fail("unknown " + std::string(name) +
                            " token '" + item.string() + "'");
            axis->push_back(value);
        }
        return true;
    };
    if (!parseAxis("policies", parsePolicyToken, &req.matrix.policies) ||
        !parseAxis("relocations", parseRelocationToken,
                   &req.matrix.relocations) ||
        !parseAxis("ro_policies", parseRoPolicyToken,
                   &req.matrix.roPolicies))
        return false;

    const JsonValue *seeds = root.find("seeds");
    if (seeds != nullptr) {
        if (!seeds->isArray() || seeds->items().empty())
            return fail("\"seeds\" must be a non-empty array of "
                        "integers");
        req.matrix.seeds.clear();
        for (const JsonValue &item : seeds->items()) {
            std::uint64_t seed;
            if (!toU64(item, &seed))
                return fail("\"seeds\" entries must be non-negative "
                            "integers");
            req.matrix.seeds.push_back(seed);
        }
    }

    const JsonValue *label = root.find("label");
    if (label != nullptr) {
        if (!label->isString())
            return fail("\"label\" must be a string");
        req.label = label->string();
    }

    const JsonValue *config = root.find("config");
    if (config != nullptr) {
        if (!config->isObject())
            return fail("\"config\" must be an object");
        for (const auto &[key, value] : config->members()) {
            if (!isKnownConfigKey(key))
                return fail("unknown config key \"" + key + "\"");
            if (!applyConfigMember(key, value, &req.matrix.base))
                return fail("config key \"" + key +
                            "\" has the wrong type");
        }
    }

    if (root.find("trace_dir") != nullptr)
        return fail("\"trace_dir\" is not accepted over the wire");

    if (!validateConfig(req.matrix.base, error))
        return false;

    // Bound the expansion: a runaway cross-product should be a 400,
    // not a queue that takes a week to drain.
    std::size_t runs = req.matrix.runCount();
    if (runs > 4096)
        return fail("matrix expands to " + std::to_string(runs) +
                    " runs; the service caps submissions at 4096");

    *out = std::move(req);
    return true;
}

std::string
runCacheKey(const SystemConfig &config, const std::string &app)
{
    JsonWriter json;
    json.beginObject();
    json.key("tool").value("vsnoop");
    json.key("version").value(toolVersion());
    json.key("git").value(gitDescribe());
    json.key("app").value(app);
    json.key("policy").value(policyKindName(config.policy));
    json.key("relocation")
        .value(relocationModeToken(config.vsnoop.relocation));
    json.key("ro_policy").value(roPolicyToken(config.vsnoop.roPolicy));
    json.key("seed").value(config.seed);
    writeWireConfig(json, config);
    // Everything run bytes can depend on beyond the wire config:
    // fields only reachable through the C++ API.  Keying them too
    // means a direct-API caller with a customized base can never be
    // served another configuration's record.
    json.key("extra").beginObject();
    json.key("l2_ways").value(config.l2.ways);
    json.key("l1_ways").value(config.l2.l1Ways);
    json.key("local_latency").value(config.mesh.localLatency);
    json.key("mem_token_latency").value(config.protocol.memTokenLatency);
    json.key("control_bytes").value(config.protocol.controlBytes);
    json.key("data_bytes").value(config.protocol.dataBytes);
    json.key("hypervisor_pages").value(config.hypervisor.hypervisorPages);
    json.key("per_vm_shared_pages")
        .value(config.hypervisor.perVmSharedPages);
    json.key("channel_pages").value(config.hypervisor.channelPages);
    json.key("trace_ticks_per_ms").value(config.traceTicksPerMs);
    json.key("invariant_check_period")
        .value(config.invariantCheckPeriod);
    json.key("capture_trace").value(config.captureTrace);
    json.key("trace_limit")
        .value(static_cast<std::uint64_t>(config.traceLimit));
    // Watchpoints filter the trace (and are API-only), so two runs
    // differing only in watch set must not share a cache entry.
    if (!config.watchPages.empty()) {
        json.key("watch_pages").beginArray();
        for (std::uint64_t page : config.watchPages)
            json.value(page);
        json.endArray();
    }
    // A placement trace changes run behavior; hash its contents so
    // two different traces never alias one key.
    if (config.placementTrace != nullptr) {
        const auto &events = *config.placementTrace;
        static_assert(
            std::is_trivially_copyable_v<PlacementEvent>,
            "placement events are hashed as raw bytes");
        std::string_view bytes(
            reinterpret_cast<const char *>(events.data()),
            events.size() * sizeof(PlacementEvent));
        json.key("placement_trace").value(contentHash(bytes));
    }
    json.endObject();
    json.endObject();
    return json.str();
}

std::string
contentHash(std::string_view text)
{
    auto fnv1a = [](std::string_view s, std::uint64_t hash) {
        for (unsigned char c : s) {
            hash ^= c;
            hash *= 1099511628211ull;
        }
        return hash;
    };
    std::uint64_t lo = fnv1a(text, 14695981039346656037ull);
    std::uint64_t hi = fnv1a(text, 0x9e3779b97f4a7c15ull);
    char buf[33];
    std::snprintf(buf, sizeof buf, "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return buf;
}

} // namespace vsnoop
