/**
 * @file
 * HTTP surface of the sweep service.
 *
 * Mounts the job API onto a sim/stats_server.hh instance:
 *
 *   POST   /jobs               submit a sweep matrix (the
 *                              service/sweep_wire.hh document);
 *                              200 {"job":id,...} or 400 {"error"}
 *   GET    /jobs               every job's status, id order
 *   GET    /jobs/<id>          one job's status + progress
 *   GET    /jobs/<id>/results  finished run records as chunked
 *                              JSONL, streamed in matrix order
 *                              while the job still runs —
 *                              byte-identical to offline
 *                              vsnoopsweep of the same matrix
 *   DELETE /jobs/<id>          request cancellation
 *
 * Unknown ids answer 404; body/route errors answer 400 with an
 * {"error": ...} JSON body.  Handlers run on the server's worker
 * threads and only touch the JobQueue's locked API, so they follow
 * the server's "thread-safe state only" handler contract.
 */

#ifndef VSNOOP_SERVICE_JOB_API_HH_
#define VSNOOP_SERVICE_JOB_API_HH_

namespace vsnoop
{

class StatsServer;
class JobQueue;

/**
 * Register the routes above.  @p queue must outlive the server's
 * serving threads (destroy the server, or shut the queue down,
 * before the queue).
 */
void registerJobRoutes(StatsServer &server, JobQueue &queue);

} // namespace vsnoop

#endif // VSNOOP_SERVICE_JOB_API_HH_
