/**
 * @file
 * FIFO sweep-job queue executing on the existing worker pool.
 *
 * One JobQueue owns the service's execution: submissions are
 * validated sweep matrices (service/sweep_wire.hh) assigned
 * monotonic ids; a single dispatcher thread executes jobs in
 * submission order, each job fanning its runs into the shared
 * system/sweep.hh runIndexed() pool with the configured run
 * parallelism.  Per-run results land in slots indexed by the run's
 * position in the expanded matrix — the same order and bytes an
 * offline vsnoopsweep of the same matrix produces.
 *
 * Every run first consults the ResultStore: a hit is served without
 * simulation (and without occupying a worker), a miss executes and
 * is inserted, so resubmitting a matrix completes with zero new
 * runs.  streamResults() delivers finished lines in matrix order
 * while the job still runs, blocking on not-yet-finished slots —
 * this backs the chunked GET /jobs/<id>/results stream.
 *
 * State machine: queued -> running -> done | failed | cancelled,
 * plus queued -> cancelled.  cancel() on a running job sets a flag
 * the run pool polls before each dispatch (the same cooperative
 * path vsnoopsweep's SIGINT uses): in-flight runs finish and are
 * kept, undispatched runs never start.  Jobs are retained after
 * completion so status and results stay queryable for the server's
 * lifetime.
 *
 * Observability: each job carries the request id of the HTTP
 * request that submitted it (surfaced in JobStatus and every span).
 * With a JobTraceRecorder attached, the queue records the
 * lifecycle as spans — queue-wait [submitted, started] and execute
 * [started, finished] tile the job's wall time exactly (a job
 * cancelled while queued gets queue-wait [submitted, finished]
 * alone), runs and cache hits/misses are recorded per slot, and
 * streamResults() brackets each consumer.  registerMetrics() also
 * exports queue-wait and per-run execute latency histograms; the
 * queue-wait histogram is sampled whenever a job leaves the queued
 * state, so its _count reconciles with vsnoop_jobs_submitted_total
 * once every job is terminal.
 */

#ifndef VSNOOP_SERVICE_JOB_QUEUE_HH_
#define VSNOOP_SERVICE_JOB_QUEUE_HH_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/result_store.hh"
#include "sim/perfmon.hh"
#include "sim/stats.hh"
#include "system/sweep.hh"
#include "trace/job_trace.hh"
#include "trace/pagemon.hh"

namespace vsnoop
{

enum class JobState : std::uint8_t
{
    Queued,
    Running,
    Done,
    Failed,
    Cancelled,
};

/** Wire token for a state ("queued", "running", ...). */
const char *jobStateName(JobState state);

/** True for Done/Failed/Cancelled (the job will not change again). */
bool jobStateTerminal(JobState state);

/** A point-in-time copy of one job's externally visible state. */
struct JobStatus
{
    std::uint64_t id = 0;
    JobState state = JobState::Queued;
    bool cancelRequested = false;
    std::size_t runsTotal = 0;
    std::size_t runsCompleted = 0;
    std::size_t runsFromCache = 0;
    std::size_t runsExecuted = 0;
    std::string label;
    /** Failure description (state == Failed). */
    std::string error;
    /** X-Request-Id of the submitting HTTP request (may be ""). */
    std::string requestId;
    /** steadyNowMs() stamps; -1 while unset. */
    std::int64_t submittedMs = -1;
    std::int64_t startedMs = -1;
    std::int64_t finishedMs = -1;
};

class JobQueue
{
  public:
    /**
     * @p store may be null (every run executes); @p runJobs is the
     * per-job worker count handed to runIndexed() (0 = hardware
     * concurrency); @p trace, when non-null, receives lifecycle
     * spans (the recorder must outlive the queue).  The dispatcher
     * thread starts immediately.
     */
    explicit JobQueue(ResultStore *store, unsigned runJobs = 0,
                      JobTraceRecorder *trace = nullptr);
    ~JobQueue();

    JobQueue(const JobQueue &) = delete;
    JobQueue &operator=(const JobQueue &) = delete;

    /**
     * Enqueue @p matrix.  Returns the new job id, or 0 with
     * @p error set when the matrix is invalid (empty axis, unknown
     * app) or the queue is shutting down.  App names are resolved
     * here so execution can never hit findApp()'s fatal path.
     */
    std::uint64_t submit(const SweepMatrix &matrix,
                         const std::string &label = "",
                         std::string *error = nullptr,
                         const std::string &requestId = "");

    /** Status copy, or nullopt for an unknown id. */
    std::optional<JobStatus> status(std::uint64_t id) const;

    /** Every job's status, id order (oldest first). */
    std::vector<JobStatus> list() const;

    /**
     * Request cancellation.  True when this call initiated one
     * (job was queued or running); false for unknown/terminal jobs.
     */
    bool cancel(std::uint64_t id);

    /**
     * Invoke @p emit with each finished result line in matrix
     * order, blocking until a slot finishes or the job reaches a
     * terminal state (after which unfinished slots are skipped —
     * matching offline vsnoopsweep's interrupted output).  @p emit
     * returning false stops the stream.  Returns false for an
     * unknown id.  Safe from many threads concurrently.
     */
    bool streamResults(
        std::uint64_t id,
        const std::function<bool(const std::string &line)> &emit);

    /**
     * Cancel queued jobs, flag the running one, and join the
     * dispatcher once its in-flight runs finish.  Idempotent; the
     * destructor calls it.  Wakes every streamResults() waiter.
     */
    void shutdown();

    /** @{ Service counters. */
    std::uint64_t jobsSubmitted() const { return jobsSubmitted_.load(); }
    std::uint64_t jobsCompleted() const { return jobsCompleted_.load(); }
    std::uint64_t jobsFailed() const { return jobsFailed_.load(); }
    std::uint64_t jobsCancelled() const { return jobsCancelled_.load(); }
    std::uint64_t runsExecuted() const { return runsExecuted_.load(); }
    std::uint64_t runsFromCache() const { return runsFromCache_.load(); }
    /** @} */

    /** See ResultStore::registerMetrics() for the contract. */
    void registerMetrics(MetricsRegistry &registry);
    void stageMetrics(MetricsRegistry &registry) const;

  private:
    struct Job
    {
        std::uint64_t id = 0;
        SweepMatrix matrix;
        /** Expanded points, their resolved profiles and configs. */
        std::vector<SweepPoint> points;
        std::vector<const AppProfile *> profiles;
        std::vector<SystemConfig> configs;
        std::vector<std::string> cacheKeys;
        std::string label;
        std::string requestId;

        JobState state = JobState::Queued;
        std::atomic<bool> cancelRequested{false};
        std::vector<std::string> lines;
        /** ready[i] != 0 iff lines[i] holds a finished record. */
        std::vector<std::uint8_t> ready;
        std::size_t completed = 0;
        std::size_t fromCache = 0;
        std::size_t executed = 0;
        std::string error;
        std::int64_t submittedMs = -1;
        std::int64_t startedMs = -1;
        std::int64_t finishedMs = -1;
    };

    void dispatchLoop();
    void execute(Job &job);
    JobStatus statusLocked(const Job &job) const;
    /** Sample the queue-wait histogram + span as a job leaves
     * Queued (mutex_ held; @p endMs is startedMs or finishedMs). */
    void leaveQueuedLocked(const Job &job, std::int64_t endMs);

    ResultStore *store_;
    unsigned runJobs_;
    JobTraceRecorder *trace_;

    mutable std::mutex mutex_;
    /** Dispatcher wakeup (new job / shutdown). */
    std::condition_variable dispatchCv_;
    /** Streamer wakeup (slot finished / terminal transition). */
    std::condition_variable resultCv_;
    std::map<std::uint64_t, std::unique_ptr<Job>> jobs_;
    std::deque<std::uint64_t> fifo_;
    std::uint64_t nextId_ = 1;
    std::atomic<bool> stopping_{false};
    bool shutdownDone_ = false;
    std::thread dispatcher_;

    std::atomic<std::uint64_t> jobsSubmitted_{0};
    std::atomic<std::uint64_t> jobsCompleted_{0};
    std::atomic<std::uint64_t> jobsFailed_{0};
    std::atomic<std::uint64_t> jobsCancelled_{0};
    std::atomic<std::uint64_t> runsExecuted_{0};
    std::atomic<std::uint64_t> runsFromCache_{0};

    /** Latency histograms, guarded by mutex_ (sampled on the
     * dispatcher and run workers, staged by the publisher). */
    LatencyHistogram queueWaitHist_;
    LatencyHistogram runExecuteHist_;

    /** Simulator-internals aggregate over executed runs that were
     * submitted with "perf": true (own lock; see sim/perfmon.hh). */
    PerfExport perf_;

    /** Page-attribution aggregate over executed runs submitted with
     * "pages": true (own lock; see trace/pagemon.hh). */
    PagesExport pages_;

    MetricsRegistry::Id submittedId_ = 0, completedId_ = 0,
                        failedId_ = 0, cancelledId_ = 0,
                        executedId_ = 0, fromCacheId_ = 0,
                        queuedGaugeId_ = 0, runningGaugeId_ = 0,
                        queueWaitHistId_ = 0, runExecuteHistId_ = 0;
    bool metricsRegistered_ = false;
};

} // namespace vsnoop

#endif // VSNOOP_SERVICE_JOB_QUEUE_HH_
