#include "sim/slog.hh"

#include <chrono>
#include <cstdio>

#include "sim/json.hh"
#include "sim/logging.hh"

namespace vsnoop
{

const char *
logLevelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Debug: return "debug";
      case LogLevel::Info: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Error: return "error";
    }
    return "info";
}

std::optional<LogLevel>
parseLogLevel(std::string_view token)
{
    if (token == "debug")
        return LogLevel::Debug;
    if (token == "info")
        return LogLevel::Info;
    if (token == "warn")
        return LogLevel::Warn;
    if (token == "error")
        return LogLevel::Error;
    return std::nullopt;
}

std::uint64_t
wallClockMs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
}

void
StructuredLog::log(LogLevel level, std::string_view msg,
                   const std::vector<LogField> &fields)
{
    // panic() inside the logger (a JsonWriter assertion, an OOM)
    // would re-enter log() on the same thread with mutex_ held;
    // dropping the nested record beats deadlocking the abort path.
    static thread_local bool inLog = false;
    if (inLog)
        return;
    inLog = true;
    struct Reset
    {
        ~Reset() { inLog = false; }
    } reset;

    LogRecord record;
    record.tsMs = wallClockMs();
    record.level = level;

    std::lock_guard<std::mutex> lock(mutex_);
    record.seq = recorded_.load(std::memory_order_relaxed) + 1;
    recorded_.store(record.seq, std::memory_order_relaxed);

    JsonWriter json;
    json.beginObject();
    json.key("seq").value(record.seq);
    json.key("ts_ms").value(record.tsMs);
    json.key("level").value(logLevelName(level));
    json.key("msg").value(std::string(msg));
    for (const LogField &field : fields) {
        json.key(field.key);
        switch (field.type) {
          case LogField::Type::String: json.value(field.str); break;
          case LogField::Type::Int: json.value(field.i64); break;
          case LogField::Type::Uint: json.value(field.u64); break;
          case LogField::Type::Double: json.value(field.f64); break;
          case LogField::Type::Bool: json.value(field.flag); break;
        }
    }
    json.endObject();
    record.json = json.str();

    // One fwrite per line: concurrent writers may interleave
    // between lines (and do not even do that while this mutex is
    // held) but never inside one.  Error records bypass quiet mode
    // so a broken service is never silent.
    if (jsonStderr_.load(std::memory_order_relaxed) &&
        (level == LogLevel::Error || !loggingQuiet())) {
        std::string line = record.json + "\n";
        std::fwrite(line.data(), 1, line.size(), stderr);
        std::fflush(stderr);
    }

    ring_.push_back(std::move(record));
    while (ring_.size() > capacity_) {
        ring_.pop_front();
        overflowed_.fetch_add(1, std::memory_order_relaxed);
    }
}

void
StructuredLog::setRingCapacity(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = capacity == 0 ? 1 : capacity;
    while (ring_.size() > capacity_) {
        ring_.pop_front();
        overflowed_.fetch_add(1, std::memory_order_relaxed);
    }
}

std::size_t
StructuredLog::ringCapacity() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return capacity_;
}

std::vector<LogRecord>
StructuredLog::tail(LogLevel minLevel, std::size_t maxCount) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<LogRecord> out;
    // Walk newest-to-oldest so the newest maxCount matches win,
    // then restore oldest-first order.
    for (auto it = ring_.rbegin();
         it != ring_.rend() && out.size() < maxCount; ++it) {
        if (static_cast<int>(it->level) >= static_cast<int>(minLevel))
            out.push_back(*it);
    }
    std::vector<LogRecord> ordered(out.rbegin(), out.rend());
    return ordered;
}

std::string
StructuredLog::renderJsonl(LogLevel minLevel,
                           std::size_t maxCount) const
{
    std::string out;
    for (const LogRecord &record : tail(minLevel, maxCount)) {
        out += record.json;
        out += '\n';
    }
    return out;
}

StructuredLog &
slog()
{
    // Leaked on purpose: loggers are used from detached contexts
    // during shutdown, so destruction order must never matter.
    static StructuredLog *instance = new StructuredLog();
    return *instance;
}

} // namespace vsnoop
