#include "sim/perfmon.hh"

#include <algorithm>

#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"

namespace vsnoop
{

void
EventQueuePerf::merge(const EventQueuePerf &other)
{
    schedules += other.schedules;
    deschedules += other.deschedules;
    wheelInserts += other.wheelInserts;
    overflowInserts += other.overflowInserts;
    maxWheelEntries = std::max(maxWheelEntries, other.maxWheelEntries);
    maxOverflowEntries = std::max(maxOverflowEntries, other.maxOverflowEntries);
    maxBucketDepth = std::max(maxBucketDepth, other.maxBucketDepth);
    poolHighWater = std::max(poolHighWater, other.poolHighWater);
    poolRefills += other.poolRefills;
    poolReuses += other.poolReuses;
    wheelOccupancy.merge(other.wheelOccupancy);
    overflowOccupancy.merge(other.overflowOccupancy);
}

void
EventQueuePerf::writeJson(JsonWriter &json) const
{
    json.beginObject();
    json.key("schedules").value(schedules);
    json.key("deschedules").value(deschedules);
    json.key("wheel_inserts").value(wheelInserts);
    json.key("overflow_inserts").value(overflowInserts);
    json.key("max_wheel_entries").value(maxWheelEntries);
    json.key("max_overflow_entries").value(maxOverflowEntries);
    json.key("max_bucket_depth").value(maxBucketDepth);
    json.key("pool_high_water").value(poolHighWater);
    json.key("pool_refills").value(poolRefills);
    json.key("pool_reuses").value(poolReuses);
    json.key("wheel_occupancy");
    wheelOccupancy.writeJson(json);
    json.key("overflow_occupancy");
    overflowOccupancy.writeJson(json);
    json.endObject();
}

double
FlatTablePerf::loadFactor() const
{
    if (endCapacity == 0)
        return 0.0;
    return static_cast<double>(endSize) / static_cast<double>(endCapacity);
}

void
FlatTablePerf::merge(const FlatTablePerf &other)
{
    probeLength.merge(other.probeLength);
    growthRehashes += other.growthRehashes;
    tombstoneCleanups += other.tombstoneCleanups;
    maxEntries = std::max(maxEntries, other.maxEntries);
    occupancy.merge(other.occupancy);
    // Sizes add: the aggregate of several tables (or several runs'
    // copies of one table) reports combined footprint, and the
    // load factor stays a true entries/slots ratio.
    endSize += other.endSize;
    endCapacity += other.endCapacity;
}

void
FlatTablePerf::writeJson(JsonWriter &json) const
{
    json.beginObject();
    json.key("probe_length");
    probeLength.writeJson(json);
    json.key("growth_rehashes").value(growthRehashes);
    json.key("tombstone_cleanups").value(tombstoneCleanups);
    json.key("max_entries").value(maxEntries);
    json.key("occupancy");
    occupancy.writeJson(json);
    json.key("size").value(endSize);
    json.key("capacity").value(endCapacity);
    json.key("load_factor").value(loadFactor());
    json.endObject();
}

void
MeshPerf::merge(const MeshPerf &other)
{
    sendBacklog.merge(other.sendBacklog);
    legLength.merge(other.legLength);
}

void
MeshPerf::writeJson(JsonWriter &json) const
{
    json.beginObject();
    json.key("send_backlog");
    sendBacklog.writeJson(json);
    json.key("leg_length");
    legLength.writeJson(json);
    json.endObject();
}

void
PerfMon::merge(const PerfMon &other)
{
    enabled = enabled || other.enabled;
    eventQueue.merge(other.eventQueue);
    mshrs.merge(other.mshrs);
    inflight.merge(other.inflight);
    memoryLedger.merge(other.memoryLedger);
    mesh.merge(other.mesh);
}

void
PerfMon::writeJson(JsonWriter &json) const
{
    json.beginObject();
    json.key("event_queue");
    eventQueue.writeJson(json);
    json.key("tables").beginObject();
    json.key("mshrs");
    mshrs.writeJson(json);
    json.key("inflight");
    inflight.writeJson(json);
    json.key("memory_ledger");
    memoryLedger.writeJson(json);
    json.endObject();
    json.key("mesh");
    mesh.writeJson(json);
    json.endObject();
}

namespace
{

const char *const kTableNames[3] = {"mshrs", "inflight", "memory_ledger"};

} // namespace

void
PerfExport::registerMetrics(MetricsRegistry &registry)
{
    vsnoop_assert(!metricsRegistered_,
                  "PerfExport metrics registered twice");
    metricsRegistered_ = true;

    runsId_ = registry.addCounter(
        "vsnoop_perf_runs_total",
        "Runs whose internal perfmon counters were aggregated.");
    schedulesId_ = registry.addCounter(
        "vsnoop_perf_event_queue_schedules_total",
        "EventQueue schedule() calls across aggregated runs.");
    deschedulesId_ = registry.addCounter(
        "vsnoop_perf_event_queue_deschedules_total",
        "EventQueue deschedule() calls that removed a pending event.");
    wheelInsertsId_ = registry.addCounter(
        "vsnoop_perf_event_queue_wheel_inserts_total",
        "Entries appended to calendar-wheel buckets.");
    overflowInsertsId_ = registry.addCounter(
        "vsnoop_perf_event_queue_overflow_inserts_total",
        "Entries pushed onto the far-future overflow heap.");
    maxWheelEntriesId_ = registry.addGauge(
        "vsnoop_perf_event_queue_max_wheel_entries",
        "High-water mark of entries resident in wheel buckets.");
    maxOverflowEntriesId_ = registry.addGauge(
        "vsnoop_perf_event_queue_max_overflow_entries",
        "High-water mark of the overflow heap.");
    maxBucketDepthId_ = registry.addGauge(
        "vsnoop_perf_event_queue_max_bucket_depth",
        "Deepest same-tick FIFO bucket observed.");
    poolHighWaterId_ = registry.addGauge(
        "vsnoop_perf_event_queue_pool_high_water",
        "OwnedEvent pool slots allocated (the pool never shrinks).");
    poolRefillsId_ = registry.addCounter(
        "vsnoop_perf_event_queue_pool_refills_total",
        "One-shot event schedules that grew the pool.");
    poolReusesId_ = registry.addCounter(
        "vsnoop_perf_event_queue_pool_reuses_total",
        "One-shot event schedules served from the free list.");
    wheelOccupancyId_ = registry.addHistogram(
        "vsnoop_perf_event_queue_wheel_occupancy",
        "Interval-sampled calendar-wheel occupancy (entries).");
    overflowOccupancyId_ = registry.addHistogram(
        "vsnoop_perf_event_queue_overflow_occupancy",
        "Interval-sampled overflow-heap occupancy (entries).");

    // Series of one family must be registered contiguously, so lay
    // the per-table series out family-major, one label set per
    // table.
    for (std::size_t t = 0; t < 3; ++t) {
        tableIds_[t].probeLength = registry.addHistogram(
            "vsnoop_perf_table_probe_length",
            "FlatMap slots touched per probe (1 = home-slot hit).",
            {{"table", kTableNames[t]}});
    }
    for (std::size_t t = 0; t < 3; ++t) {
        tableIds_[t].occupancy = registry.addHistogram(
            "vsnoop_perf_table_occupancy",
            "Interval-sampled FlatMap live-entry occupancy.",
            {{"table", kTableNames[t]}});
    }
    for (std::size_t t = 0; t < 3; ++t) {
        tableIds_[t].growthRehashes = registry.addCounter(
            "vsnoop_perf_table_growth_rehashes_total",
            "FlatMap capacity-doubling rehashes.",
            {{"table", kTableNames[t]}});
    }
    for (std::size_t t = 0; t < 3; ++t) {
        tableIds_[t].tombstoneCleanups = registry.addCounter(
            "vsnoop_perf_table_tombstone_cleanups_total",
            "FlatMap same-capacity tombstone-cleanup rehashes.",
            {{"table", kTableNames[t]}});
    }
    for (std::size_t t = 0; t < 3; ++t) {
        tableIds_[t].maxEntries = registry.addGauge(
            "vsnoop_perf_table_max_entries",
            "High-water mark of FlatMap live entries.",
            {{"table", kTableNames[t]}});
    }
    for (std::size_t t = 0; t < 3; ++t) {
        tableIds_[t].loadFactor = registry.addGauge(
            "vsnoop_perf_table_load_factor",
            "End-of-run FlatMap entries/slots ratio.",
            {{"table", kTableNames[t]}});
    }

    sendBacklogId_ = registry.addHistogram(
        "vsnoop_perf_mesh_send_backlog",
        "Cycles each mesh hop waited behind a busy link.");
    legLengthId_ = registry.addHistogram(
        "vsnoop_perf_mesh_leg_length",
        "Hops walked per XY mesh leg.");
}

void
PerfExport::add(const PerfMon &perf)
{
    std::lock_guard<std::mutex> lock(mutex_);
    total_.merge(perf);
    runs_++;
}

std::uint64_t
PerfExport::runs() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return runs_;
}

void
PerfExport::stageMetrics(MetricsRegistry &registry) const
{
    vsnoop_assert(metricsRegistered_,
                  "stageMetrics() before registerMetrics()");
    // Copy under the lock, stage outside it: setHistogram touches
    // many slots and must not hold the add() lock hostage.
    PerfMon total;
    std::uint64_t runs = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        total = total_;
        runs = runs_;
    }

    registry.set(runsId_, static_cast<double>(runs));
    const EventQueuePerf &eq = total.eventQueue;
    registry.set(schedulesId_, static_cast<double>(eq.schedules));
    registry.set(deschedulesId_, static_cast<double>(eq.deschedules));
    registry.set(wheelInsertsId_, static_cast<double>(eq.wheelInserts));
    registry.set(overflowInsertsId_,
                 static_cast<double>(eq.overflowInserts));
    registry.set(maxWheelEntriesId_,
                 static_cast<double>(eq.maxWheelEntries));
    registry.set(maxOverflowEntriesId_,
                 static_cast<double>(eq.maxOverflowEntries));
    registry.set(maxBucketDepthId_,
                 static_cast<double>(eq.maxBucketDepth));
    registry.set(poolHighWaterId_,
                 static_cast<double>(eq.poolHighWater));
    registry.set(poolRefillsId_, static_cast<double>(eq.poolRefills));
    registry.set(poolReusesId_, static_cast<double>(eq.poolReuses));
    registry.setHistogram(wheelOccupancyId_, eq.wheelOccupancy);
    registry.setHistogram(overflowOccupancyId_, eq.overflowOccupancy);

    const FlatTablePerf *tables[3] = {&total.mshrs, &total.inflight,
                                      &total.memoryLedger};
    for (std::size_t t = 0; t < 3; ++t) {
        const FlatTablePerf &table = *tables[t];
        const TableIds &ids = tableIds_[t];
        registry.setHistogram(ids.probeLength, table.probeLength);
        registry.setHistogram(ids.occupancy, table.occupancy);
        registry.set(ids.growthRehashes,
                     static_cast<double>(table.growthRehashes));
        registry.set(ids.tombstoneCleanups,
                     static_cast<double>(table.tombstoneCleanups));
        registry.set(ids.maxEntries,
                     static_cast<double>(table.maxEntries));
        registry.set(ids.loadFactor, table.loadFactor());
    }

    registry.setHistogram(sendBacklogId_, total.mesh.sendBacklog);
    registry.setHistogram(legLengthId_, total.mesh.legLength);
}

} // namespace vsnoop
