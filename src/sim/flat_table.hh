/**
 * @file
 * Open-addressed flat hash map keyed by line numbers.
 *
 * The simulator's per-line state — MSHRs, the in-flight token
 * ledger, persistent-request queues, the memory token ledger — all
 * key on 64-bit line numbers and live on the miss path, where
 * std::unordered_map's node-per-entry allocation and pointer chasing
 * dominate the profile.  FlatMap replaces them with a single
 * contiguous key array plus a parallel value array, linear probing,
 * and tombstone deletion: lookups touch one or two cache lines and
 * mutation never allocates once the table is reserved to its
 * steady-state size (tables are config-reserved at construction from
 * ProtocolConfig / cache geometry).
 *
 * Two key values are reserved as slot markers.  Line numbers are
 * addresses shifted right by the line-offset bits, so they can never
 * reach the top of the 64-bit range; an assert enforces this.
 *
 * Iteration order is table order, not insertion order — callers that
 * feed simulation-visible output must sort or aggregate
 * order-insensitively (the existing users only populate sets for
 * invariant checks).
 */

#ifndef VSNOOP_SIM_FLAT_TABLE_HH_
#define VSNOOP_SIM_FLAT_TABLE_HH_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/perfmon.hh"

namespace vsnoop
{

/**
 * Open-addressed hash map from std::uint64_t keys to V.
 *
 * V must be default-constructible and move-assignable; erased slots
 * are reset to a default-constructed V so held resources (e.g. a
 * completion callback's captures) are released eagerly.
 */
template <typename V>
class FlatMap
{
  public:
    using Key = std::uint64_t;

    /** Marker for a never-used slot (terminates probe chains). */
    static constexpr Key kEmpty = ~Key{0};
    /** Marker for an erased slot (probe chains continue past it). */
    static constexpr Key kTombstone = ~Key{0} - 1;

    FlatMap() { rehash(kMinCapacity); }

    /** Grow so @p n entries fit without rehashing. */
    void
    reserve(std::size_t n)
    {
        std::size_t cap = kMinCapacity;
        // Probe-friendly: keep the table at most ~7/8 full.
        while (cap - cap / 8 < n)
            cap *= 2;
        if (cap > keys_.size())
            rehash(cap);
    }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    /** Allocated slots (power of two). */
    std::size_t capacity() const { return keys_.size(); }

    /**
     * Attach an internals counter block (sim/perfmon.hh); nullptr
     * detaches.  Branch-on-null: probe loops keep a local counter
     * and pay one predictable branch per operation when detached.
     */
    void setPerf(FlatTablePerf *perf) { perf_ = perf; }

    /** Pointer to the value for @p key, or nullptr. */
    V *
    find(Key key)
    {
        std::size_t slot = findSlot(key);
        return slot == kNoSlot ? nullptr : &vals_[slot];
    }

    const V *
    find(Key key) const
    {
        std::size_t slot = findSlot(key);
        return slot == kNoSlot ? nullptr : &vals_[slot];
    }

    bool contains(Key key) const { return findSlot(key) != kNoSlot; }

    /**
     * Insert @p value under @p key.
     *
     * @return The slot's value pointer and whether an insert
     *         happened (false when the key already existed; the
     *         existing value is left untouched, matching
     *         unordered_map::emplace).
     */
    std::pair<V *, bool>
    emplace(Key key, V value)
    {
        checkKey(key);
        maybeGrow();
        auto [slot, existed] = probeForInsert(key);
        if (existed)
            return {&vals_[slot], false};
        claim(slot, key);
        vals_[slot] = std::move(value);
        return {&vals_[slot], true};
    }

    /**
     * Value for @p key, default-constructing it on first use
     * (unordered_map::operator[]).
     */
    V &
    getOrInsert(Key key)
    {
        checkKey(key);
        maybeGrow();
        auto [slot, existed] = probeForInsert(key);
        if (!existed)
            claim(slot, key);
        return vals_[slot];
    }

    /** Remove @p key.  @return True when an entry was erased. */
    bool
    erase(Key key)
    {
        std::size_t slot = findSlot(key);
        if (slot == kNoSlot)
            return false;
        keys_[slot] = kTombstone;
        vals_[slot] = V{};
        size_--;
        tombstones_++;
        return true;
    }

    /** Visit every entry as fn(key, value), in table order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < keys_.size(); ++i) {
            if (keys_[i] < kTombstone)
                fn(keys_[i], vals_[i]);
        }
    }

  private:
    static constexpr std::size_t kMinCapacity = 16;
    static constexpr std::size_t kNoSlot = ~std::size_t{0};

    static std::size_t
    hash(Key key)
    {
        // Fibonacci multiplicative mix; table sizes are powers of
        // two, so the multiply must spread entropy into low bits.
        std::uint64_t h = key * 0x9E3779B97F4A7C15ull;
        return static_cast<std::size_t>(h ^ (h >> 29));
    }

    static void
    checkKey(Key key)
    {
        vsnoop_assert(key < kTombstone,
                      "FlatMap key collides with a slot marker: ", key);
    }

    /** Slot of @p key, or kNoSlot. */
    std::size_t
    findSlot(Key key) const
    {
        std::size_t mask = keys_.size() - 1;
        std::size_t i = hash(key) & mask;
        std::size_t slot = kNoSlot;
        std::uint64_t probes = 1;
        while (true) {
            Key k = keys_[i];
            if (k == key) {
                slot = i;
                break;
            }
            if (k == kEmpty)
                break;
            i = (i + 1) & mask;
            probes++;
        }
        if (perf_ != nullptr)
            perf_->probeLength.sample(probes);
        return slot;
    }

    /**
     * Probe for an insert of @p key: yields either the existing
     * entry's slot (true) or the first reusable slot (false).
     */
    std::pair<std::size_t, bool>
    probeForInsert(Key key)
    {
        std::size_t mask = keys_.size() - 1;
        std::size_t i = hash(key) & mask;
        std::size_t reuse = kNoSlot;
        std::pair<std::size_t, bool> found;
        std::uint64_t probes = 1;
        while (true) {
            Key k = keys_[i];
            if (k == key) {
                found = {i, true};
                break;
            }
            if (k == kEmpty) {
                found = {reuse != kNoSlot ? reuse : i, false};
                break;
            }
            if (k == kTombstone && reuse == kNoSlot)
                reuse = i;
            i = (i + 1) & mask;
            probes++;
        }
        if (perf_ != nullptr)
            perf_->probeLength.sample(probes);
        return found;
    }

    void
    claim(std::size_t slot, Key key)
    {
        if (keys_[slot] == kTombstone)
            tombstones_--;
        keys_[slot] = key;
        size_++;
        if (perf_ != nullptr && size_ > perf_->maxEntries)
            perf_->maxEntries = size_;
    }

    void
    maybeGrow()
    {
        // Count tombstones against the load factor so long-lived
        // tables with erase churn re-pack instead of degrading into
        // full-table probes.
        std::size_t cap = keys_.size();
        if ((size_ + tombstones_ + 1) * 8 <= cap * 7)
            return;
        bool grow = size_ + 1 > cap / 2;
        if (perf_ != nullptr) {
            if (grow)
                perf_->growthRehashes++;
            else
                perf_->tombstoneCleanups++;
        }
        rehash(grow ? cap * 2 : cap);
    }

    void
    rehash(std::size_t new_cap)
    {
        std::vector<Key> old_keys = std::move(keys_);
        std::vector<V> old_vals = std::move(vals_);
        keys_.assign(new_cap, kEmpty);
        vals_.clear();
        vals_.resize(new_cap);
        tombstones_ = 0;
        std::size_t mask = new_cap - 1;
        for (std::size_t i = 0; i < old_keys.size(); ++i) {
            if (old_keys[i] >= kTombstone)
                continue;
            std::size_t j = hash(old_keys[i]) & mask;
            while (keys_[j] != kEmpty)
                j = (j + 1) & mask;
            keys_[j] = old_keys[i];
            vals_[j] = std::move(old_vals[i]);
        }
    }

    std::vector<Key> keys_;
    std::vector<V> vals_;
    std::size_t size_ = 0;
    std::size_t tombstones_ = 0;
    FlatTablePerf *perf_ = nullptr;
};

} // namespace vsnoop

#endif // VSNOOP_SIM_FLAT_TABLE_HH_
