/**
 * @file
 * Lightweight statistics primitives.
 *
 * Components declare Counter / Distribution / Histogram members and
 * optionally register them with a StatSet for uniform dumping.  The
 * classes are deliberately simple: plain accumulation, no
 * thread-safety, and cheap increments on hot paths.  Every stat is
 * owned by the components of one SimSystem; under the sweep
 * runner's "one SimSystem per thread" contract (see
 * system/sim_system.hh) no stat is ever touched from two threads.
 */

#ifndef VSNOOP_SIM_STATS_HH_
#define VSNOOP_SIM_STATS_HH_

#include <array>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace vsnoop
{

class JsonWriter;

/**
 * A monotonically increasing event count.
 */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

    Counter &operator++() { value_++; return *this; }
    Counter &operator+=(std::uint64_t by) { value_ += by; return *this; }

  private:
    std::uint64_t value_ = 0;
};

/**
 * Mean / min / max / count over a stream of samples.
 *
 * Second moments use Welford's online algorithm: the naive
 * sum-of-squares formula catastrophically cancels for
 * large-magnitude samples (e.g. tick timestamps late in a long
 * run), producing variances off by orders of magnitude or clamped
 * negative results.
 */
class Distribution
{
  public:
    void sample(double value);
    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    /** Population variance. */
    double variance() const;
    double stddev() const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    /** Welford running mean and sum of squared deviations. */
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-width bucketed histogram over [0, bucketWidth * bucketCount);
 * samples beyond the top land in an overflow bucket.  Supports
 * quantile queries and cumulative-distribution dumps (used for the
 * paper's Figure 9 core-removal-period CDF).
 */
class Histogram
{
  public:
    /**
     * @param bucket_width Width of each bucket, > 0.
     * @param bucket_count Number of regular buckets, > 0.
     */
    Histogram(double bucket_width, std::size_t bucket_count);

    /**
     * Record one sample.  Sampled quantities (ticks, counts) are
     * non-negative by construction; a negative sample indicates an
     * upstream accounting bug and is asserted on rather than
     * silently clamped into bucket 0.
     */
    void sample(double value);
    void reset();

    std::uint64_t count() const { return count_; }
    double bucketWidth() const { return bucketWidth_; }
    std::size_t bucketCount() const { return buckets_.size(); }
    std::uint64_t bucketHits(std::size_t i) const { return buckets_.at(i); }
    std::uint64_t overflowHits() const { return overflow_; }

    /**
     * Fraction of samples <= value (linear interpolation inside the
     * containing bucket is not applied; the CDF is a step function
     * at bucket upper edges).
     */
    double cdfAt(double value) const;

    /**
     * Smallest bucket upper edge whose CDF reaches q in [0,1].
     *
     * quantile(0) returns the upper edge of the smallest populated
     * bucket (the minimum's bucket), not the first bucket edge.
     * When the requested quantile lies in the overflow bucket the
     * result is +infinity, so it cannot be confused with a
     * legitimate top-edge answer.
     */
    double quantile(double q) const;

    /**
     * Dump the CDF as (upper_edge, cumulative_fraction) points,
     * skipping empty leading buckets.
     */
    std::vector<std::pair<double, double>> cdfPoints() const;

  private:
    double bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
};

/**
 * Log2-bucketed latency histogram for integer tick durations.
 *
 * Bucket 0 holds the value 0; bucket i >= 1 covers [2^(i-1), 2^i).
 * Values past the last bucket clamp into it (max() still reports
 * the true maximum).  Compared to the fixed-width Histogram this
 * covers the full dynamic range of transaction latencies — from a
 * one-cycle L2 hit path to a persistent-request stall thousands of
 * cycles long — with a handful of buckets and no configuration.
 *
 * Quantiles are deterministic: quantile(q) walks the cumulative
 * counts and returns the containing bucket's inclusive upper edge,
 * clamped into [min(), max()] so a degenerate distribution (all
 * samples equal) reports the exact value.
 */
class LatencyHistogram
{
  public:
    /** Bucket count; the top bucket covers [2^38, inf). */
    static constexpr std::size_t kNumBuckets = 40;

    void sample(std::uint64_t value);
    void reset();

    /** Fold another histogram in, as if its samples were recorded
     *  here (buckets and moments add, min/max combine). */
    void merge(const LatencyHistogram &other);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const;

    std::uint64_t bucketHits(std::size_t i) const { return buckets_[i]; }
    /** Bucket index a value lands in (with top-bucket clamping). */
    static std::size_t bucketFor(std::uint64_t value);
    /** Inclusive lower edge of bucket i. */
    static std::uint64_t bucketLowerEdge(std::size_t i);
    /** Inclusive upper edge of bucket i (nominal for the top bucket). */
    static std::uint64_t bucketUpperEdge(std::size_t i);

    /** See class comment; q in [0,1].  0 with no samples. */
    std::uint64_t quantile(double q) const;

    /**
     * Emit {count,sum,min,max,mean,p50,p90,p99,buckets:[...]} with
     * the bucket array trimmed after the last non-empty bucket.
     */
    void writeJson(JsonWriter &json) const;

  private:
    std::array<std::uint64_t, kNumBuckets> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t max_ = 0;
};

/**
 * A named registry of counters for uniform text and JSON dumps.
 * Components register references; the StatSet never owns the
 * stats.  Names are unique across both kinds — registering the
 * same name twice (even once as a counter and once as a
 * distribution) is asserted on.
 */
class StatSet
{
  public:
    void add(const std::string &name, const Counter &counter);
    void add(const std::string &name, const Distribution &dist);

    /**
     * Render "name value" lines, sorted by name.  Distributions
     * emit their full summary: count, mean, stddev, min, max.
     */
    std::string dump() const;

    /**
     * Render one JSON object: counters as integer members,
     * distributions as nested {count, mean, stddev, min, max}
     * objects.  Deterministic (sorted by name).
     */
    std::string dumpJson() const;

  private:
    friend class StatSetExport;

    std::map<std::string, const Counter *> counters_;
    std::map<std::string, const Distribution *> dists_;
};

class MetricsRegistry;

/**
 * Binds a StatSet to live-telemetry series (sim/metrics.hh).
 *
 * Construction registers one series per stat — counters as
 * Prometheus counters named `<prefix><name>_total`, distributions
 * as `<prefix><name>_{count,mean,min,max}` gauges — with stat-name
 * characters outside the Prometheus grammar mapped to '_'.
 * update() copies the current values into the registry's staging
 * area; the registry's publisher makes them visible.
 *
 * Threading: update() reads the same thread-confined stats the
 * owning SimSystem mutates, so only that system's thread may call
 * it (the same rule as every other stats read during a run).
 */
class StatSetExport
{
  public:
    StatSetExport() = default;

    /** Register every stat in @p set; see the class comment. */
    StatSetExport(const StatSet &set, MetricsRegistry &registry,
                  const std::string &prefix);

    /** Stage current values into the registry (no publish). */
    void update();

    std::size_t seriesCount() const { return entries_.size(); }

  private:
    struct Entry
    {
        const Counter *counter = nullptr;
        const Distribution *dist = nullptr;
        /** Registry id; for distributions: count/mean/min/max. */
        std::size_t id = 0;
        std::size_t meanId = 0;
        std::size_t minId = 0;
        std::size_t maxId = 0;
    };

    MetricsRegistry *registry_ = nullptr;
    std::vector<Entry> entries_;
};

} // namespace vsnoop

#endif // VSNOOP_SIM_STATS_HH_
