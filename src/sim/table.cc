#include "sim/table.hh"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "sim/logging.hh"

namespace vsnoop
{

std::string
formatFixed(double value, int decimals)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(decimals) << value;
    return os.str();
}

std::string
formatPercent(double ratio, int decimals)
{
    return formatFixed(ratio * 100.0, decimals);
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    vsnoop_assert(!headers_.empty(), "a table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    vsnoop_assert(cells.size() == headers_.size(),
                  "row width ", cells.size(), " != header width ",
                  headers_.size());
    rows_.push_back(std::move(cells));
}

TextTable &
TextTable::row()
{
    rows_.emplace_back();
    return *this;
}

TextTable &
TextTable::cell(const std::string &value)
{
    vsnoop_assert(!rows_.empty(), "cell() before row()");
    vsnoop_assert(rows_.back().size() < headers_.size(),
                  "too many cells in row");
    rows_.back().push_back(value);
    return *this;
}

TextTable &
TextTable::cell(double value, int decimals)
{
    return cell(formatFixed(value, decimals));
}

TextTable &
TextTable::cell(std::uint64_t value)
{
    return cell(std::to_string(value));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < headers_.size(); ++c) {
            std::string text = c < cells.size() ? cells[c] : "";
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << text;
            if (c + 1 < headers_.size())
                os << "  ";
        }
        os << "\n";
    };

    emit_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
    return os.str();
}

void
TextTable::print() const
{
    std::cout << render() << std::flush;
}

} // namespace vsnoop
