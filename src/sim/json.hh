/**
 * @file
 * Minimal deterministic JSON writer.
 *
 * The sweep runner and the stats layer emit machine-readable
 * results as JSON; this writer is the single place that defines the
 * encoding so every producer is byte-identical for identical
 * values:
 *
 *  - no insignificant whitespace;
 *  - doubles use shortest-round-trip formatting (std::to_chars), so
 *    equal doubles always print the same bytes;
 *  - non-finite doubles (JSON has no representation) encode as
 *    null;
 *  - object members appear in insertion order — callers are
 *    responsible for iterating sorted containers when they need
 *    name-sorted output.
 *
 * Usage:
 *   JsonWriter json;
 *   json.beginObject().key("runtime").value(t).endObject();
 *   std::string line = json.str();
 *
 * Structural misuse (a value without a key inside an object, str()
 * with open containers) is asserted on.
 */

#ifndef VSNOOP_SIM_JSON_HH_
#define VSNOOP_SIM_JSON_HH_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace vsnoop
{

/** Escape a string for embedding in a JSON document (no quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Streaming JSON document builder with automatic comma placement.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit a member name; must be inside an object. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &s);
    JsonWriter &value(const char *s);
    JsonWriter &value(double d);
    JsonWriter &value(bool b);
    JsonWriter &value(std::uint64_t u);
    JsonWriter &value(std::int64_t i);
    JsonWriter &value(std::uint32_t u) {
        return value(static_cast<std::uint64_t>(u));
    }
    JsonWriter &value(int i) { return value(static_cast<std::int64_t>(i)); }
    JsonWriter &null();

    /** The finished document; asserts all containers are closed. */
    std::string str() const;

  private:
    enum class Frame : std::uint8_t { Object, Array };

    /** Prefix a comma if needed and account for the new element. */
    void beginElement();

    std::string out_;
    std::vector<Frame> stack_;
    /** Elements emitted in the innermost container. */
    std::vector<std::size_t> counts_;
    /** A key was just written; the next value completes the member. */
    bool keyPending_ = false;
};

/**
 * A parsed JSON document node (the read-side counterpart of
 * JsonWriter).  Object members keep source order, matching the
 * writer's insertion-order contract, so a write -> parse -> inspect
 * round trip observes members in the order they were emitted.
 *
 * Numbers are stored as double; every integer the simulator emits
 * (counts, ticks) round-trips exactly up to 2^53, far above any
 * value a run produces.
 */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    using Member = std::pair<std::string, JsonValue>;

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }

    /** Typed accessors; assert on kind mismatch. */
    bool boolean() const;
    double number() const;
    const std::string &string() const;
    const std::vector<JsonValue> &items() const;
    const std::vector<Member> &members() const;

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &name) const;
    /** Member's number, or fallback when absent / not a number. */
    double numberAt(const std::string &name, double fallback = 0.0) const;
    /** Member's string, or fallback when absent / not a string. */
    std::string stringAt(const std::string &name,
                         const std::string &fallback = "") const;

  private:
    friend class JsonParser;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> items_;
    std::vector<Member> members_;
};

/**
 * Parse one complete JSON document (leading / trailing whitespace
 * allowed, trailing garbage rejected).  Returns nullopt on
 * malformed input and, when @p error is non-null, stores a one-line
 * description with the byte offset.
 */
std::optional<JsonValue> parseJson(std::string_view text,
                                   std::string *error = nullptr);

} // namespace vsnoop

#endif // VSNOOP_SIM_JSON_HH_
