/**
 * @file
 * Minimal deterministic JSON writer.
 *
 * The sweep runner and the stats layer emit machine-readable
 * results as JSON; this writer is the single place that defines the
 * encoding so every producer is byte-identical for identical
 * values:
 *
 *  - no insignificant whitespace;
 *  - doubles use shortest-round-trip formatting (std::to_chars), so
 *    equal doubles always print the same bytes;
 *  - non-finite doubles (JSON has no representation) encode as
 *    null;
 *  - object members appear in insertion order — callers are
 *    responsible for iterating sorted containers when they need
 *    name-sorted output.
 *
 * Usage:
 *   JsonWriter json;
 *   json.beginObject().key("runtime").value(t).endObject();
 *   std::string line = json.str();
 *
 * Structural misuse (a value without a key inside an object, str()
 * with open containers) is asserted on.
 */

#ifndef VSNOOP_SIM_JSON_HH_
#define VSNOOP_SIM_JSON_HH_

#include <cstdint>
#include <string>
#include <vector>

namespace vsnoop
{

/** Escape a string for embedding in a JSON document (no quotes). */
std::string jsonEscape(const std::string &s);

/**
 * Streaming JSON document builder with automatic comma placement.
 */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Emit a member name; must be inside an object. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &s);
    JsonWriter &value(const char *s);
    JsonWriter &value(double d);
    JsonWriter &value(bool b);
    JsonWriter &value(std::uint64_t u);
    JsonWriter &value(std::int64_t i);
    JsonWriter &value(std::uint32_t u) {
        return value(static_cast<std::uint64_t>(u));
    }
    JsonWriter &value(int i) { return value(static_cast<std::int64_t>(i)); }
    JsonWriter &null();

    /** The finished document; asserts all containers are closed. */
    std::string str() const;

  private:
    enum class Frame : std::uint8_t { Object, Array };

    /** Prefix a comma if needed and account for the new element. */
    void beginElement();

    std::string out_;
    std::vector<Frame> stack_;
    /** Elements emitted in the innermost container. */
    std::vector<std::size_t> counts_;
    /** A key was just written; the next value completes the member. */
    bool keyPending_ = false;
};

} // namespace vsnoop

#endif // VSNOOP_SIM_JSON_HH_
