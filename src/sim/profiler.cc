#include "sim/profiler.hh"

#include <algorithm>
#include <chrono>
#include <ostream>

#include "sim/logging.hh"
#include "sim/table.hh"

namespace vsnoop
{

namespace
{

std::uint64_t
nowNanos()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/**
 * Per-charge timestamp.  enter()/exit() run tens of millions of
 * times per simulated run, so the stamp must be as cheap as the
 * machine allows: the raw cycle counter where available, calibrated
 * against the wall clock once per begin()..end() interval.
 */
std::uint64_t
rawStamp()
{
#if defined(__x86_64__) || defined(__i386__)
    return __builtin_ia32_rdtsc();
#else
    return nowNanos();
#endif
}

} // namespace

void
HostProfiler::begin()
{
    vsnoop_assert(depth_ == 0, "HostProfiler::begin() while running");
    stack_[0] = Phase::Other;
    depth_ = 1;
    beginNanos_ = nowNanos();
    lastStamp_ = rawStamp();
}

void
HostProfiler::end(std::uint64_t events_processed)
{
    vsnoop_assert(depth_ == 1,
                  "HostProfiler::end() with ", depth_ - 1, " open scope(s)");
    charge();
    depth_ = 0;
    events_ += events_processed;

    // Convert the interval's raw-tick shares into nanoseconds using
    // the measured wall interval, assigning the integer-rounding
    // residue to Other so the per-phase sum still equals the
    // begin()..end() interval exactly.
    std::uint64_t interval = nowNanos() - beginNanos_;
    std::uint64_t raw_total = 0;
    for (std::uint64_t r : raw_)
        raw_total += r;
    std::uint64_t assigned = 0;
    if (raw_total > 0) {
        for (std::size_t i = 0; i < raw_.size(); ++i) {
            auto share = static_cast<std::uint64_t>(
                static_cast<double>(raw_[i]) /
                static_cast<double>(raw_total) *
                static_cast<double>(interval));
            // A phase that was entered must keep a visible (>= 1 ns)
            // share per interval: a short drain's sub-ns fraction
            // otherwise truncates to zero in every window and the
            // phase never surfaces in --profile output, no matter
            // how many windows accumulate.
            if (share == 0 && raw_[i] > 0)
                share = 1;
            share = std::min(share, interval - assigned);
            nanos_[i] += share;
            assigned += share;
            raw_[i] = 0;
        }
    }
    nanos_[static_cast<std::size_t>(Phase::Other)] += interval - assigned;
}

void
HostProfiler::enter(Phase phase)
{
    vsnoop_assert(depth_ > 0, "ProfileScope outside begin()..end()");
    vsnoop_assert(depth_ < stack_.size(), "profile scopes nested too deep");
    charge();
    stack_[depth_++] = phase;
}

void
HostProfiler::exit()
{
    vsnoop_assert(depth_ > 1, "HostProfiler::exit() with no open scope");
    charge();
    depth_--;
}

void
HostProfiler::charge()
{
    std::uint64_t now = rawStamp();
    raw_[static_cast<std::size_t>(stack_[depth_ - 1])] += now - lastStamp_;
    lastStamp_ = now;
}

std::uint64_t
HostProfiler::phaseNanos(Phase phase) const
{
    return nanos_[static_cast<std::size_t>(phase)];
}

std::uint64_t
HostProfiler::totalNanos() const
{
    std::uint64_t total = 0;
    for (std::uint64_t n : nanos_)
        total += n;
    return total;
}

double
HostProfiler::eventsPerSecond() const
{
    std::uint64_t total = totalNanos();
    if (total == 0)
        return 0.0;
    return static_cast<double>(events_) * 1e9 / static_cast<double>(total);
}

void
HostProfiler::merge(const HostProfiler &other)
{
    vsnoop_assert(depth_ == 0 && other.depth_ == 0,
                  "HostProfiler::merge() while running");
    for (std::size_t i = 0; i < kNumProfilePhases; ++i)
        nanos_[i] += other.nanos_[i];
    events_ += other.events_;
}

const char *
profilePhaseName(HostProfiler::Phase phase)
{
    switch (phase) {
      case HostProfiler::Phase::Generate: return "generate";
      case HostProfiler::Phase::Coherence: return "coherence";
      case HostProfiler::Phase::Network: return "network";
      case HostProfiler::Phase::Drain: return "drain";
      case HostProfiler::Phase::Other: return "other";
    }
    return "?";
}

void
writeProfile(std::ostream &os, const HostProfiler &profiler)
{
    double total_s =
        static_cast<double>(profiler.totalNanos()) / 1e9;
    os << "host profile: " << formatFixed(total_s, 3) << " s profiled, "
       << profiler.events() << " events ("
       << formatFixed(profiler.eventsPerSecond() / 1e6, 2)
       << " M events/s)\n";
    TextTable table({"phase", "time (s)", "share %"});
    for (std::size_t i = 0; i < kNumProfilePhases; ++i) {
        auto phase = static_cast<HostProfiler::Phase>(i);
        double s = static_cast<double>(profiler.phaseNanos(phase)) / 1e9;
        double share = total_s > 0.0 ? s / total_s : 0.0;
        table.row()
            .cell(profilePhaseName(phase))
            .cell(s, 3)
            .cell(formatPercent(share));
    }
    os << table.render();
}

} // namespace vsnoop
