/**
 * @file
 * Status and error reporting helpers, in the spirit of gem5's
 * base/logging.hh.
 *
 * panic()  - an internal invariant was violated (simulator bug);
 *            aborts so the failure can be caught in a debugger.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration); exits with status 1.
 * warn()   - something is modelled approximately; the run continues.
 * inform() - plain status output.
 */

#ifndef VSNOOP_SIM_LOGGING_HH_
#define VSNOOP_SIM_LOGGING_HH_

#include <sstream>
#include <string>

namespace vsnoop
{

namespace detail
{

/** Terminate with an "internal error" banner; never returns. */
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);

/** Terminate with a "user error" banner; never returns. */
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning banner to stderr. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

/** Concatenate a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

} // namespace detail

/** True once quietLogging() has been called (suppresses warn/inform). */
bool loggingQuiet();

/** Suppress warn()/inform() output, e.g. inside benchmarks. */
void quietLogging(bool quiet);

} // namespace vsnoop

#define vsnoop_panic(...)                                                  \
    ::vsnoop::detail::panicImpl(__FILE__, __LINE__,                        \
                                ::vsnoop::detail::concat(__VA_ARGS__))

#define vsnoop_fatal(...)                                                  \
    ::vsnoop::detail::fatalImpl(__FILE__, __LINE__,                        \
                                ::vsnoop::detail::concat(__VA_ARGS__))

#define vsnoop_warn(...)                                                   \
    ::vsnoop::detail::warnImpl(::vsnoop::detail::concat(__VA_ARGS__))

#define vsnoop_inform(...)                                                 \
    ::vsnoop::detail::informImpl(::vsnoop::detail::concat(__VA_ARGS__))

/** Assert a simulator invariant; compiled in all build types. */
#define vsnoop_assert(cond, ...)                                           \
    do {                                                                   \
        if (!(cond)) {                                                     \
            vsnoop_panic("assertion failed: " #cond " ", __VA_ARGS__);     \
        }                                                                  \
    } while (0)

#endif // VSNOOP_SIM_LOGGING_HH_
