/**
 * @file
 * Simulator-internals performance monitor (perfmon).
 *
 * The hot-path machinery — the calendar event queue, the FlatMap
 * protocol tables, the pooled one-shot events, the mesh send loop —
 * is tuned blind without occupancy and health counters: a probe
 * chain that degrades, a wheel bucket that deepens, or a pool that
 * keeps refilling shows up only as a mysterious runs/s regression.
 * Perfmon gives those structures the same self-measurement
 * discipline the simulated protocol already has.
 *
 * The hooks follow the repository's branch-on-null contract
 * (trace/trace.hh, sim/profiler.hh): every instrumented component
 * holds a nullable pointer to its counter block and pays one
 * predictable branch per site when monitoring is off.  Counters are
 * plain (non-atomic) and thread-confined to the owning SimSystem,
 * like every other per-run statistic.
 *
 * Everything recorded here is a deterministic function of the
 * simulation (structure sizes, probe counts, backlog cycles — never
 * wall-clock time), so the `results.perf` JSON block is
 * byte-identical across --jobs values, and absent entirely when
 * monitoring is off.
 *
 * PerfExport aggregates finished runs' PerfMon blocks across a
 * sweep's worker threads (merge under a mutex at run end — the same
 * pattern as HostProfiler aggregation) and exposes them as
 * Prometheus series on the sweep/serve /metrics endpoint.
 */

#ifndef VSNOOP_SIM_PERFMON_HH_
#define VSNOOP_SIM_PERFMON_HH_

#include <cstdint>
#include <mutex>
#include <string>

#include "sim/stats.hh"

namespace vsnoop
{

class JsonWriter;
class MetricsRegistry;

/**
 * EventQueue health: wheel and overflow-heap pressure plus the
 * one-shot callback pool's churn.  Occupancy histograms are sampled
 * by the IntervalSampler (one sample per interval); the counters
 * accumulate per structural operation.
 */
struct EventQueuePerf
{
    /** schedule() calls (reschedules included). */
    std::uint64_t schedules = 0;
    /** deschedule() calls that removed a pending event. */
    std::uint64_t deschedules = 0;
    /** Entries appended to wheel buckets (overflow migrations
     *  included — they are wheel pressure too). */
    std::uint64_t wheelInserts = 0;
    /** Entries pushed onto the far-future overflow heap. */
    std::uint64_t overflowInserts = 0;
    /** High-water mark of entries resident in wheel buckets. */
    std::uint64_t maxWheelEntries = 0;
    /** High-water mark of the overflow heap. */
    std::uint64_t maxOverflowEntries = 0;
    /** Deepest same-tick FIFO bucket ever observed. */
    std::uint64_t maxBucketDepth = 0;
    /** OwnedEvent slots ever allocated (the pool never shrinks). */
    std::uint64_t poolHighWater = 0;
    /** scheduleFn() calls that grew the pool. */
    std::uint64_t poolRefills = 0;
    /** scheduleFn() calls served from the free list. */
    std::uint64_t poolReuses = 0;
    /** @{ Interval-sampled occupancy (entries at sample ticks). */
    LatencyHistogram wheelOccupancy;
    LatencyHistogram overflowOccupancy;
    /** @} */

    void merge(const EventQueuePerf &other);
    void writeJson(JsonWriter &json) const;
};

/**
 * One named FlatMap's probe health.  Probe length counts slots
 * touched per lookup/insert probe (1 = direct hit on the home
 * slot), so a healthy table keeps the histogram mass in the first
 * couple of buckets; growing tails predict a rehash tuning.
 */
struct FlatTablePerf
{
    /** Slots touched per findSlot()/probeForInsert() probe. */
    LatencyHistogram probeLength;
    /** Capacity-doubling rehashes. */
    std::uint64_t growthRehashes = 0;
    /** Same-capacity re-packs triggered by tombstone load. */
    std::uint64_t tombstoneCleanups = 0;
    /** High-water mark of live entries. */
    std::uint64_t maxEntries = 0;
    /** Interval-sampled live-entry occupancy. */
    LatencyHistogram occupancy;
    /** @{ End-of-run snapshot (filled when results are taken). */
    std::uint64_t endSize = 0;
    std::uint64_t endCapacity = 0;
    /** @} */

    /** endSize / endCapacity (0 when the capacity is unknown). */
    double loadFactor() const;

    void merge(const FlatTablePerf &other);
    void writeJson(JsonWriter &json) const;
};

/**
 * Mesh send-loop shape: how far each XY leg walks and how many
 * cycles each hop waits behind earlier traffic.  Backlog records
 * every hop (zero-wait hops land in bucket 0), so the histogram is
 * the true backlog distribution, not just the contended tail.
 */
struct MeshPerf
{
    /** Cycles waited behind a busy link, one sample per hop. */
    LatencyHistogram sendBacklog;
    /** Hops walked per XY leg, one sample per leg. */
    LatencyHistogram legLength;

    void merge(const MeshPerf &other);
    void writeJson(JsonWriter &json) const;
};

/**
 * The full per-run counter block, owned by SimSystem and copied
 * into SystemResults at results() time.  `enabled` gates JSON
 * emission so runs without --perf stay byte-identical.
 */
struct PerfMon
{
    bool enabled = false;
    EventQueuePerf eventQueue;
    FlatTablePerf mshrs;
    FlatTablePerf inflight;
    FlatTablePerf memoryLedger;
    MeshPerf mesh;

    void merge(const PerfMon &other);

    /** The `results.perf` block (deterministic member order). */
    void writeJson(JsonWriter &json) const;
};

/**
 * Sweep-level perfmon aggregation for live telemetry.
 *
 * Worker threads add() each finished run's PerfMon (merge under the
 * internal mutex — off the simulation hot path); the registry's
 * single publisher thread stages the aggregate with stageMetrics()
 * before its publish().  registerMetrics() must run before
 * registry.freeze(), like every other series owner.
 */
class PerfExport
{
  public:
    /** Register the vsnoop_perf_* series.  Call once. */
    void registerMetrics(MetricsRegistry &registry);

    /** Fold one finished run's counters in (any thread). */
    void add(const PerfMon &perf);

    /** Runs aggregated so far. */
    std::uint64_t runs() const;

    /** Stage current aggregates (publisher thread only). */
    void stageMetrics(MetricsRegistry &registry) const;

  private:
    mutable std::mutex mutex_;
    PerfMon total_;
    std::uint64_t runs_ = 0;

    struct TableIds
    {
        std::size_t probeLength = 0;
        std::size_t occupancy = 0;
        std::size_t growthRehashes = 0;
        std::size_t tombstoneCleanups = 0;
        std::size_t maxEntries = 0;
        std::size_t loadFactor = 0;
    };

    std::size_t runsId_ = 0;
    std::size_t schedulesId_ = 0;
    std::size_t deschedulesId_ = 0;
    std::size_t wheelInsertsId_ = 0;
    std::size_t overflowInsertsId_ = 0;
    std::size_t maxWheelEntriesId_ = 0;
    std::size_t maxOverflowEntriesId_ = 0;
    std::size_t maxBucketDepthId_ = 0;
    std::size_t poolHighWaterId_ = 0;
    std::size_t poolRefillsId_ = 0;
    std::size_t poolReusesId_ = 0;
    std::size_t wheelOccupancyId_ = 0;
    std::size_t overflowOccupancyId_ = 0;
    TableIds tableIds_[3];
    std::size_t sendBacklogId_ = 0;
    std::size_t legLengthId_ = 0;
    bool metricsRegistered_ = false;
};

} // namespace vsnoop

#endif // VSNOOP_SIM_PERFMON_HH_
