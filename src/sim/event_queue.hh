/**
 * @file
 * Discrete-event simulation kernel.
 *
 * An EventQueue orders Events by tick; ties are broken by schedule
 * order (FIFO among same-tick events) so runs are deterministic.
 * Components own their recurring Event objects and schedule them
 * against the queue; one-shot callbacks can be scheduled directly
 * and are owned by the queue.
 *
 * Descheduling and rescheduling are supported via generation
 * counters: every schedule() stamps the event with a fresh token and
 * stale heap entries are discarded lazily when popped.
 *
 * One-shot callbacks are stored in a slot pool: each scheduleFn()
 * reuses a previously-dispatched wrapper slot instead of allocating,
 * and the callable's captures live in the slot's SmallFn inline
 * buffer.  A slot is released only after its callback returns, so a
 * callback may schedule further callbacks (including at the same
 * tick) without ever being handed its own still-running slot.
 *
 * Pending events live in a calendar queue: a timing wheel of
 * per-tick FIFO buckets covering the near future (where nearly all
 * protocol events land — message deliveries and retry windows are
 * all well under the wheel span), with a 4-ary min-heap overflow for
 * far-future events (migration epochs, periodic scans).  Insert and
 * extract are O(1) on the wheel path, and dispatch order is exactly
 * the (tick, schedule-order) total order a comparison heap would
 * produce: a bucket only ever receives entries for a single tick in
 * ascending sequence order, and overflow entries for a tick are
 * migrated into its bucket before any direct insert can target it.
 */

#ifndef VSNOOP_SIM_EVENT_QUEUE_HH_
#define VSNOOP_SIM_EVENT_QUEUE_HH_

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/profiler.hh"
#include "sim/small_fn.hh"
#include "sim/types.hh"

namespace vsnoop
{

class EventQueue;
struct EventQueuePerf;

/**
 * Base class for anything that can be scheduled on an EventQueue.
 */
class Event
{
  public:
    virtual ~Event() = default;

    /** Invoked by the queue when simulated time reaches the event. */
    virtual void process() = 0;

    /** True while the event sits in a queue awaiting dispatch. */
    bool scheduled() const { return scheduled_; }

    /** Tick the event is currently scheduled for (kMaxTick if none). */
    Tick when() const { return scheduled_ ? when_ : kMaxTick; }

  private:
    friend class EventQueue;

    bool scheduled_ = false;
    Tick when_ = kMaxTick;
    std::uint64_t token_ = 0;
};

/**
 * The simulation clock and pending-event heap.
 */
class EventQueue
{
  public:
    /** One-shot callback type accepted by scheduleFn(). */
    using Callback = SmallFn<void()>;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of events dispatched since construction. */
    std::uint64_t eventsProcessed() const { return processed_; }

    /** True when no events remain pending. */
    bool empty() const { return live_ == 0; }

    /**
     * Schedule a component-owned event at an absolute tick.
     * Rescheduling an already-scheduled event moves it.
     *
     * @param event Event to dispatch; must outlive dispatch.
     * @param when Absolute tick, not before now().
     */
    void schedule(Event &event, Tick when);

    /** Schedule a component-owned event @p delay ticks from now. */
    void scheduleIn(Event &event, Tick delay) {
        schedule(event, now_ + delay);
    }

    /** Remove a pending event from the queue (no-op if idle). */
    void deschedule(Event &event);

    /**
     * Schedule a one-shot callback at an absolute tick.  The queue
     * owns the wrapper and recycles it after dispatch.
     */
    void scheduleFn(Tick when, Callback fn);

    /** Schedule a one-shot callback @p delay ticks from now. */
    void scheduleFnIn(Tick delay, Callback fn) {
        scheduleFn(now_ + delay, std::move(fn));
    }

    /**
     * Dispatch pending events in order until the queue drains or
     * the limit is hit.
     *
     * @param limit Maximum events to dispatch (guards against
     *        accidental infinite event chains).
     * @return Number of events dispatched.
     */
    std::uint64_t run(std::uint64_t limit = UINT64_MAX);

    /**
     * Dispatch events with tick <= until, then set now() to
     * @p until even if the queue drained early.
     *
     * @return Number of events dispatched.
     */
    std::uint64_t runUntil(Tick until);

    /**
     * Attribute runUntil() dispatch time to @p phase on @p profiler
     * (one scope per runUntil call, not per event — per-event clock
     * reads at tens of millions of events/s were a measurable share
     * of the whole simulation).  Nested scopes opened by individual
     * events (e.g. workload generation) still subtract themselves
     * from the bracket, so exclusive attribution is preserved at
     * phase granularity.  run() is deliberately not bracketed: the
     * end-of-run drain calls it inside its own Drain scope.
     */
    void setDispatchProfile(HostProfiler *profiler,
                            HostProfiler::Phase phase) {
        profiler_ = profiler;
        profilePhase_ = phase;
    }

    /** Dispatch exactly one event if any is pending. */
    bool step();

    /**
     * Attach an internals counter block (sim/perfmon.hh); nullptr
     * detaches.  Branch-on-null like setDispatchProfile(): every
     * hook costs one predictable branch when detached.
     */
    void setPerf(EventQueuePerf *perf) { perf_ = perf; }

    /** @{
     * Live structure occupancy, read by the perfmon interval
     * sampler (and anyone else curious).
     */
    std::uint64_t wheelEntries() const { return wheelCount_; }
    std::uint64_t overflowEntries() const { return overflow_.size(); }
    std::uint64_t poolSlots() const { return pool_.size(); }
    /** @} */

  private:
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        Event *event;
        std::uint64_t token;

        bool
        operator>(const HeapEntry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    /**
     * A pooled wrapper for one-shot callbacks.  Slots live at stable
     * addresses (behind unique_ptr) for the queue's lifetime and are
     * recycled through freeSlots_ once their callback has returned.
     */
    class OwnedEvent : public Event
    {
      public:
        OwnedEvent(EventQueue &eq, std::uint32_t slot)
            : eq_(eq), slot_(slot)
        {
        }

        void process() override;

        Callback fn;

      private:
        EventQueue &eq_;
        std::uint32_t slot_;
    };

    /**
     * One wheel slot.  While a tick is within the wheel's window its
     * bucket is a FIFO: entries append at the back and drain from
     * head.  head-consumed prefixes are reclaimed lazily when the
     * bucket empties (capacity is kept for reuse).
     */
    struct Bucket
    {
        std::vector<HeapEntry> entries;
        std::size_t head = 0;
    };

    /** Wheel span in ticks (power of two). */
    static constexpr std::size_t kWheelBits = 12;
    static constexpr std::size_t kWheelSize = std::size_t{1} << kWheelBits;
    static constexpr std::size_t kWheelMask = kWheelSize - 1;

    /**
     * Find the next valid (non-stale) entry without consuming it.
     * Stale entries encountered on the way are discarded.
     */
    bool peekNext(HeapEntry &out);

    /** Consume the entry peekNext() just returned. */
    void consumePeeked();

    /** peekNext + consumePeeked in one step. */
    bool popNext(HeapEntry &out);

    /** Dispatch one popped entry. */
    void dispatch(HeapEntry &entry);

    /** Append to the wheel bucket for entry.when. */
    void wheelAppend(const HeapEntry &entry);

    /**
     * Advance the clock and slide the wheel window: overflow entries
     * that fall inside the new window move into their buckets.  Must
     * run at every now_ change so bucket FIFO order stays sequence
     * order (see file comment).
     */
    void advanceTo(Tick t);

    /** @{
     * 4-ary min-heap over (when, seq) for beyond-the-window events.
     */
    void heapPush(const HeapEntry &entry);
    void heapPopTop();
    /** @} */

    std::vector<Bucket> wheel_{kWheelSize};
    /** Entries (valid + stale) currently in wheel buckets. */
    std::uint64_t wheelCount_ = 0;
    /**
     * No wheel entry lives at a tick below peekCursor_; scans resume
     * here instead of at now_.  Pulled back on any insert below it.
     */
    Tick peekCursor_ = 0;
    /** The entry peekNext() found came from overflow_, not the wheel. */
    bool peekFromOverflow_ = false;
    std::vector<HeapEntry> overflow_;
    HostProfiler *profiler_ = nullptr;
    HostProfiler::Phase profilePhase_ = HostProfiler::Phase::Coherence;
    EventQueuePerf *perf_ = nullptr;
    std::vector<std::unique_ptr<OwnedEvent>> pool_;
    std::vector<std::uint32_t> freeSlots_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t nextToken_ = 1;
    std::uint64_t processed_ = 0;
    std::uint64_t live_ = 0;
};

} // namespace vsnoop

#endif // VSNOOP_SIM_EVENT_QUEUE_HH_
