/**
 * @file
 * Discrete-event simulation kernel.
 *
 * An EventQueue orders Events by tick; ties are broken by schedule
 * order (FIFO among same-tick events) so runs are deterministic.
 * Components own their recurring Event objects and schedule them
 * against the queue; one-shot callbacks can be scheduled directly
 * and are owned by the queue.
 *
 * Descheduling and rescheduling are supported via generation
 * counters: every schedule() stamps the event with a fresh token and
 * stale heap entries are discarded lazily when popped.
 */

#ifndef VSNOOP_SIM_EVENT_QUEUE_HH_
#define VSNOOP_SIM_EVENT_QUEUE_HH_

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/types.hh"

namespace vsnoop
{

class EventQueue;

/**
 * Base class for anything that can be scheduled on an EventQueue.
 */
class Event
{
  public:
    virtual ~Event() = default;

    /** Invoked by the queue when simulated time reaches the event. */
    virtual void process() = 0;

    /** True while the event sits in a queue awaiting dispatch. */
    bool scheduled() const { return scheduled_; }

    /** Tick the event is currently scheduled for (kMaxTick if none). */
    Tick when() const { return scheduled_ ? when_ : kMaxTick; }

  private:
    friend class EventQueue;

    bool scheduled_ = false;
    Tick when_ = kMaxTick;
    std::uint64_t token_ = 0;
};

/**
 * An Event wrapping a std::function, for one-shot callbacks.
 */
class LambdaEvent : public Event
{
  public:
    explicit LambdaEvent(std::function<void()> fn) : fn_(std::move(fn)) {}

    void process() override { fn_(); }

  private:
    std::function<void()> fn_;
};

/**
 * The simulation clock and pending-event heap.
 */
class EventQueue
{
  public:
    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of events dispatched since construction. */
    std::uint64_t eventsProcessed() const { return processed_; }

    /** True when no events remain pending. */
    bool empty() const { return live_ == 0; }

    /**
     * Schedule a component-owned event at an absolute tick.
     * Rescheduling an already-scheduled event moves it.
     *
     * @param event Event to dispatch; must outlive dispatch.
     * @param when Absolute tick, not before now().
     */
    void schedule(Event &event, Tick when);

    /** Schedule a component-owned event @p delay ticks from now. */
    void scheduleIn(Event &event, Tick delay) {
        schedule(event, now_ + delay);
    }

    /** Remove a pending event from the queue (no-op if idle). */
    void deschedule(Event &event);

    /**
     * Schedule a one-shot callback at an absolute tick.  The queue
     * owns the wrapper and frees it after dispatch.
     */
    void scheduleFn(Tick when, std::function<void()> fn);

    /** Schedule a one-shot callback @p delay ticks from now. */
    void scheduleFnIn(Tick delay, std::function<void()> fn) {
        scheduleFn(now_ + delay, std::move(fn));
    }

    /**
     * Dispatch pending events in order until the queue drains or
     * the limit is hit.
     *
     * @param limit Maximum events to dispatch (guards against
     *        accidental infinite event chains).
     * @return Number of events dispatched.
     */
    std::uint64_t run(std::uint64_t limit = UINT64_MAX);

    /**
     * Dispatch events with tick <= until, then set now() to
     * @p until even if the queue drained early.
     *
     * @return Number of events dispatched.
     */
    std::uint64_t runUntil(Tick until);

    /** Dispatch exactly one event if any is pending. */
    bool step();

  private:
    struct HeapEntry
    {
        Tick when;
        std::uint64_t seq;
        Event *event;
        std::uint64_t token;

        bool
        operator>(const HeapEntry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    /** Pop the next valid entry, discarding stale ones. */
    bool popNext(HeapEntry &out);

    /** Free dispatched one-shot callbacks, amortized. */
    void reapOwned();

    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<>> heap_;
    std::vector<std::unique_ptr<LambdaEvent>> owned_;
    std::size_t lastReapSize_ = 0;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t nextToken_ = 1;
    std::uint64_t processed_ = 0;
    std::uint64_t live_ = 0;
};

} // namespace vsnoop

#endif // VSNOOP_SIM_EVENT_QUEUE_HH_
