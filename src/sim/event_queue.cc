#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace vsnoop
{

void
EventQueue::schedule(Event &event, Tick when)
{
    vsnoop_assert(when >= now_,
                  "scheduling into the past: when=", when, " now=", now_);
    if (event.scheduled_) {
        // Invalidate the previous heap entry; it will be skipped on
        // pop because the tokens no longer match.
        live_--;
    }
    event.scheduled_ = true;
    event.when_ = when;
    event.token_ = nextToken_++;
    heap_.push(HeapEntry{when, seq_++, &event, event.token_});
    live_++;
}

void
EventQueue::deschedule(Event &event)
{
    if (!event.scheduled_)
        return;
    event.scheduled_ = false;
    event.token_ = 0;
    live_--;
}

void
EventQueue::scheduleFn(Tick when, std::function<void()> fn)
{
    owned_.push_back(std::make_unique<LambdaEvent>(std::move(fn)));
    schedule(*owned_.back(), when);
}

void
EventQueue::reapOwned()
{
    // Amortize the sweep: clean up only after the wrapper pool has
    // grown by a full batch since the last sweep.  Gating on growth
    // (rather than absolute size) keeps the sweep O(1) amortized
    // even when more than a batch of callbacks is legitimately
    // pending far in the future.
    if (owned_.size() < lastReapSize_ + 1024)
        return;
    std::erase_if(owned_, [](const std::unique_ptr<LambdaEvent> &ev) {
        return !ev->scheduled();
    });
    lastReapSize_ = owned_.size();
}

bool
EventQueue::popNext(HeapEntry &out)
{
    while (!heap_.empty()) {
        HeapEntry top = heap_.top();
        heap_.pop();
        if (top.event->scheduled_ && top.event->token_ == top.token) {
            out = top;
            return true;
        }
        // Stale entry: event was descheduled or rescheduled.
    }
    return false;
}

std::uint64_t
EventQueue::run(std::uint64_t limit)
{
    std::uint64_t dispatched = 0;
    HeapEntry entry;
    while (dispatched < limit && popNext(entry)) {
        now_ = entry.when;
        entry.event->scheduled_ = false;
        entry.event->token_ = 0;
        live_--;
        processed_++;
        dispatched++;
        entry.event->process();
        reapOwned();
    }
    return dispatched;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    std::uint64_t dispatched = 0;
    HeapEntry entry;
    while (popNext(entry)) {
        if (entry.when > until) {
            // Put it back: simplest is to re-push the same entry;
            // the token still matches so it stays valid.
            heap_.push(entry);
            break;
        }
        now_ = entry.when;
        entry.event->scheduled_ = false;
        entry.event->token_ = 0;
        live_--;
        processed_++;
        dispatched++;
        entry.event->process();
        reapOwned();
    }
    now_ = std::max(now_, until);
    return dispatched;
}

bool
EventQueue::step()
{
    return run(1) == 1;
}

} // namespace vsnoop
