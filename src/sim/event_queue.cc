#include "sim/event_queue.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/perfmon.hh"

namespace vsnoop
{

void
EventQueue::schedule(Event &event, Tick when)
{
    vsnoop_assert(when >= now_,
                  "scheduling into the past: when=", when, " now=", now_);
    if (perf_ != nullptr)
        perf_->schedules++;
    if (event.scheduled_) {
        // Invalidate the previous entry; it will be skipped on pop
        // because the tokens no longer match.
        live_--;
    }
    event.scheduled_ = true;
    event.when_ = when;
    event.token_ = nextToken_++;
    HeapEntry entry{when, seq_++, &event, event.token_};
    if (when - now_ < kWheelSize)
        wheelAppend(entry);
    else
        heapPush(entry);
    live_++;
}

void
EventQueue::wheelAppend(const HeapEntry &entry)
{
    Bucket &bucket = wheel_[entry.when & kWheelMask];
    bucket.entries.push_back(entry);
    wheelCount_++;
    if (entry.when < peekCursor_)
        peekCursor_ = entry.when;
    if (perf_ != nullptr) {
        perf_->wheelInserts++;
        if (wheelCount_ > perf_->maxWheelEntries)
            perf_->maxWheelEntries = wheelCount_;
        std::uint64_t depth = bucket.entries.size() - bucket.head;
        if (depth > perf_->maxBucketDepth)
            perf_->maxBucketDepth = depth;
    }
}

void
EventQueue::advanceTo(Tick t)
{
    now_ = t;
    if (peekCursor_ < t)
        peekCursor_ = t;
    while (!overflow_.empty()) {
        const HeapEntry &top = overflow_.front();
        if (top.when >= now_) {
            if (top.when - now_ >= kWheelSize)
                break;
            HeapEntry moved = top;
            heapPopTop();
            wheelAppend(moved);
        } else {
            // The clock never passes a live entry, so an entry left
            // behind it must have been descheduled or rescheduled.
            vsnoop_assert(!top.event->scheduled_ ||
                              top.event->token_ != top.token,
                          "live event left behind the clock");
            heapPopTop();
        }
    }
}

void
EventQueue::deschedule(Event &event)
{
    if (!event.scheduled_)
        return;
    if (perf_ != nullptr)
        perf_->deschedules++;
    event.scheduled_ = false;
    event.token_ = 0;
    live_--;
}

void
EventQueue::scheduleFn(Tick when, Callback fn)
{
    OwnedEvent *slot;
    if (!freeSlots_.empty()) {
        slot = pool_[freeSlots_.back()].get();
        freeSlots_.pop_back();
        if (perf_ != nullptr)
            perf_->poolReuses++;
    } else {
        pool_.push_back(std::make_unique<OwnedEvent>(
            *this, static_cast<std::uint32_t>(pool_.size())));
        slot = pool_.back().get();
        if (perf_ != nullptr) {
            perf_->poolRefills++;
            perf_->poolHighWater = pool_.size();
        }
    }
    slot->fn = std::move(fn);
    schedule(*slot, when);
}

void
EventQueue::OwnedEvent::process()
{
    fn();
    // Release only after the callback has returned: the callback may
    // itself scheduleFn() — growing the pool or reusing other free
    // slots — but can never be handed this still-running one.
    fn.reset();
    eq_.freeSlots_.push_back(slot_);
}

void
EventQueue::heapPush(const HeapEntry &entry)
{
    std::size_t i = overflow_.size();
    overflow_.push_back(entry);
    while (i > 0) {
        std::size_t parent = (i - 1) / 4;
        if (!(overflow_[parent] > entry))
            break;
        overflow_[i] = overflow_[parent];
        i = parent;
    }
    overflow_[i] = entry;
    if (perf_ != nullptr) {
        perf_->overflowInserts++;
        if (overflow_.size() > perf_->maxOverflowEntries)
            perf_->maxOverflowEntries = overflow_.size();
    }
}

void
EventQueue::heapPopTop()
{
    HeapEntry last = overflow_.back();
    overflow_.pop_back();
    std::size_t n = overflow_.size();
    if (n == 0)
        return;
    std::size_t i = 0;
    for (;;) {
        std::size_t first = 4 * i + 1;
        if (first >= n)
            break;
        std::size_t best = first;
        std::size_t end = std::min(first + 4, n);
        for (std::size_t c = first + 1; c < end; ++c) {
            if (overflow_[best] > overflow_[c])
                best = c;
        }
        if (!(last > overflow_[best]))
            break;
        overflow_[i] = overflow_[best];
        i = best;
    }
    overflow_[i] = last;
}

bool
EventQueue::peekNext(HeapEntry &out)
{
    if (wheelCount_ > 0) {
        // All wheel entries sit in [now_, now_ + kWheelSize), and
        // none below peekCursor_, so this scan is bounded by the
        // wheel span and normally ends within a few buckets.
        Tick t = peekCursor_;
        for (;;) {
            Bucket &bucket = wheel_[t & kWheelMask];
            while (bucket.head < bucket.entries.size()) {
                const HeapEntry &e = bucket.entries[bucket.head];
                if (e.event->scheduled_ && e.event->token_ == e.token) {
                    peekCursor_ = t;
                    peekFromOverflow_ = false;
                    out = e;
                    return true;
                }
                // Stale: event was descheduled or rescheduled.
                bucket.head++;
                wheelCount_--;
            }
            if (bucket.head != 0) {
                bucket.entries.clear();
                bucket.head = 0;
            }
            if (wheelCount_ == 0)
                break;
            t++;
        }
        peekCursor_ = t;
    }
    // Nothing in the wheel: the next event (if any) is beyond the
    // window, at the overflow heap's top.
    while (!overflow_.empty()) {
        const HeapEntry &top = overflow_.front();
        if (top.event->scheduled_ && top.event->token_ == top.token) {
            peekFromOverflow_ = true;
            out = top;
            return true;
        }
        heapPopTop();
    }
    return false;
}

void
EventQueue::consumePeeked()
{
    if (peekFromOverflow_) {
        heapPopTop();
        return;
    }
    Bucket &bucket = wheel_[peekCursor_ & kWheelMask];
    bucket.head++;
    wheelCount_--;
    if (bucket.head == bucket.entries.size()) {
        bucket.entries.clear();
        bucket.head = 0;
    }
}

bool
EventQueue::popNext(HeapEntry &out)
{
    if (!peekNext(out))
        return false;
    consumePeeked();
    return true;
}

void
EventQueue::dispatch(HeapEntry &entry)
{
    advanceTo(entry.when);
    entry.event->scheduled_ = false;
    entry.event->token_ = 0;
    live_--;
    processed_++;
    entry.event->process();
}

std::uint64_t
EventQueue::run(std::uint64_t limit)
{
    std::uint64_t dispatched = 0;
    HeapEntry entry;
    while (dispatched < limit && popNext(entry)) {
        dispatch(entry);
        dispatched++;
    }
    return dispatched;
}

std::uint64_t
EventQueue::runUntil(Tick until)
{
    ProfileScope scope(profiler_, profilePhase_);
    std::uint64_t dispatched = 0;
    HeapEntry entry;
    while (peekNext(entry) && entry.when <= until) {
        consumePeeked();
        dispatch(entry);
        dispatched++;
    }
    if (now_ < until)
        advanceTo(until);
    return dispatched;
}

bool
EventQueue::step()
{
    return run(1) == 1;
}

} // namespace vsnoop
