/**
 * @file
 * Host self-profiler: where does the simulator's own wall-clock
 * time go?
 *
 * The hot loop is instrumented with ProfileScope guards at the
 * phase boundaries (workload generation, coherence protocol work,
 * network routing, end-of-run drain).  Like the trace hooks
 * (trace/trace.hh), every instrumentation site holds a nullable
 * HostProfiler pointer and branches on it, so a run without
 * --profile pays one predictable branch per site and no clock
 * reads.
 *
 * Attribution is exclusive (self time): entering a nested scope
 * charges the elapsed interval to the enclosing phase first, so the
 * per-phase nanoseconds always sum to the begin()..end() interval
 * with no double counting.  Scopes nest arbitrarily — a network
 * send issued from inside coherence work charges the send to
 * Network and the surrounding protocol work to Coherence.
 *
 * Wall-clock readings are inherently nondeterministic, so profiler
 * output goes to stderr only and is never embedded in run JSON
 * (which must stay byte-identical across --jobs values).
 */

#ifndef VSNOOP_SIM_PROFILER_HH_
#define VSNOOP_SIM_PROFILER_HH_

#include <array>
#include <cstdint>
#include <iosfwd>

namespace vsnoop
{

/** Number of HostProfiler::Phase values. */
constexpr std::size_t kNumProfilePhases = 5;

/**
 * Accumulates per-phase self time for one run (or, via merge(),
 * aggregated CPU time across a sweep's workers).
 */
class HostProfiler
{
  public:
    enum class Phase : std::uint8_t
    {
        /** Synthetic workload generation (VcpuWorkload::next). */
        Generate,
        /** Coherence controller work: requests, snoops, responses. */
        Coherence,
        /** Mesh routing and link accounting. */
        Network,
        /** End-of-run drain of in-flight transactions. */
        Drain,
        /** Inside begin()..end() but outside any scope. */
        Other,
    };

    /** Start the profiled interval; resets nothing (merges add up). */
    void begin();

    /** Close the interval and record the simulator event count. */
    void end(std::uint64_t events_processed);

    /** Enter a phase (charges elapsed time to the current one). */
    void enter(Phase phase);

    /** Leave the innermost phase. */
    void exit();

    bool running() const { return depth_ > 0; }

    std::uint64_t phaseNanos(Phase phase) const;
    /** Sum over all phases == the begin()..end() interval(s). */
    std::uint64_t totalNanos() const;
    std::uint64_t events() const { return events_; }
    /** Events per second of profiled time; 0 with no time. */
    double eventsPerSecond() const;

    /** Fold another profiler's totals into this one. */
    void merge(const HostProfiler &other);

  private:
    /** Charge now - lastStamp_ to the phase on top of the stack. */
    void charge();

    std::array<std::uint64_t, kNumProfilePhases> nanos_{};
    /**
     * Raw cycle-counter time per phase for the open interval;
     * converted to nanoseconds (against the wall-clock interval
     * length) and folded into nanos_ at end().
     */
    std::array<std::uint64_t, kNumProfilePhases> raw_{};
    std::uint64_t beginNanos_ = 0;
    std::uint64_t events_ = 0;
    /** Phase stack; slot 0 is the implicit Other frame. */
    std::array<Phase, 64> stack_{};
    std::uint32_t depth_ = 0;
    std::uint64_t lastStamp_ = 0;
};

/** Human name for a phase ("generate", "coherence", ...). */
const char *profilePhaseName(HostProfiler::Phase phase);

/**
 * RAII phase guard.  A null profiler makes construction and
 * destruction a branch each — the zero-cost-when-off contract.
 */
class ProfileScope
{
  public:
    ProfileScope(HostProfiler *profiler, HostProfiler::Phase phase)
        : profiler_(profiler)
    {
        if (profiler_)
            profiler_->enter(phase);
    }

    ~ProfileScope()
    {
        if (profiler_)
            profiler_->exit();
    }

    ProfileScope(const ProfileScope &) = delete;
    ProfileScope &operator=(const ProfileScope &) = delete;

  private:
    HostProfiler *profiler_;
};

/** Render the per-phase breakdown as an aligned text table. */
void writeProfile(std::ostream &os, const HostProfiler &profiler);

} // namespace vsnoop

#endif // VSNOOP_SIM_PROFILER_HH_
