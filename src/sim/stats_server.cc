#include "sim/stats_server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "sim/logging.hh"

namespace vsnoop
{

namespace
{

/**
 * Split "host:port" and parse both halves.  Only IPv4 dotted quads
 * (and the empty host, meaning INADDR_ANY) are accepted — the
 * embedded server is a debugging endpoint, not a general listener.
 */
bool
parseAddr(const std::string &addr, std::string *host,
          std::uint16_t *port, std::string *error)
{
    std::size_t colon = addr.rfind(':');
    if (colon == std::string::npos) {
        if (error)
            *error = "expected host:port, got '" + addr + "'";
        return false;
    }
    *host = addr.substr(0, colon);
    std::string port_str = addr.substr(colon + 1);
    char *end = nullptr;
    unsigned long parsed = std::strtoul(port_str.c_str(), &end, 10);
    if (end == port_str.c_str() || *end != '\0' || parsed > 65535) {
        if (error)
            *error = "invalid port '" + port_str + "'";
        return false;
    }
    *port = static_cast<std::uint16_t>(parsed);
    if (host->empty())
        *host = "0.0.0.0";
    in_addr probe{};
    if (inet_pton(AF_INET, host->c_str(), &probe) != 1) {
        if (error)
            *error = "invalid IPv4 address '" + *host +
                     "' (use a dotted quad, e.g. 127.0.0.1)";
        return false;
    }
    return true;
}

void
setSocketTimeout(int fd, int timeout_ms)
{
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

bool
writeAll(int fd, const char *data, std::size_t size)
{
    while (size > 0) {
        ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue; // interrupted by a signal, not an error
        if (n <= 0)
            return false;
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

/** recv() that retries EINTR (socket timeouts still return -1). */
ssize_t
recvRetry(int fd, char *buf, std::size_t size)
{
    for (;;) {
        ssize_t n = ::recv(fd, buf, size, 0);
        if (n < 0 && errno == EINTR)
            continue;
        return n;
    }
}

const char *
statusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      default: return "Error";
    }
}

std::string
serialize(const HttpResponse &resp)
{
    std::string out = "HTTP/1.1 ";
    out += std::to_string(resp.status);
    out += ' ';
    out += statusText(resp.status);
    out += "\r\nContent-Type: ";
    out += resp.contentType;
    out += "\r\nContent-Length: ";
    out += std::to_string(resp.body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += resp.body;
    return out;
}

} // namespace

StatsServer::~StatsServer()
{
    stop();
}

void
StatsServer::route(std::string path, Handler handler)
{
    vsnoop_assert(!running(),
                  "routes must be registered before start()");
    vsnoop_assert(!path.empty() && path[0] == '/',
                  "route path must start with '/'");
    routes_.emplace_back(std::move(path), std::move(handler));
}

bool
StatsServer::start(const std::string &addr, std::string *error)
{
    vsnoop_assert(!running(), "stats server started twice");
    if (!parseAddr(addr, &host_, &port_, error))
        return false;

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(port_);
    inet_pton(AF_INET, host_.c_str(), &sin.sin_addr);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&sin), sizeof sin) < 0 ||
        ::listen(fd, 16) < 0) {
        if (error)
            *error = "cannot listen on " + addr + ": " +
                     std::strerror(errno);
        ::close(fd);
        return false;
    }

    // Resolve port 0 to the kernel-assigned ephemeral port.
    socklen_t len = sizeof sin;
    if (getsockname(fd, reinterpret_cast<sockaddr *>(&sin), &len) == 0)
        port_ = ntohs(sin.sin_port);

    listenFd_ = fd;
    stopping_.store(false, std::memory_order_relaxed);
    thread_ = std::thread(&StatsServer::serveLoop, this);
    return true;
}

std::string
StatsServer::address() const
{
    return host_ + ":" + std::to_string(port_);
}

void
StatsServer::stop()
{
    if (!running())
        return;
    stopping_.store(true, std::memory_order_relaxed);
    // Unblock accept(); on Linux this makes it return with an
    // error, after which the loop observes stopping_ and exits.
    ::shutdown(listenFd_, SHUT_RDWR);
    if (thread_.joinable())
        thread_.join();
    ::close(listenFd_);
    listenFd_ = -1;
}

void
StatsServer::serveLoop()
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load(std::memory_order_relaxed))
                break;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            break; // listening socket is gone; nothing to serve
        }
        handleConnection(fd);
        ::close(fd);
    }
}

void
StatsServer::handleConnection(int fd)
{
    setSocketTimeout(fd, 2000);

    // Read until the end of the request headers (or a sane cap);
    // the request body, if any, is ignored.
    std::string request;
    char buf[2048];
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.size() < 16 * 1024) {
        ssize_t n = recvRetry(fd, buf, sizeof buf);
        if (n <= 0)
            return;
        request.append(buf, static_cast<std::size_t>(n));
    }

    requests_.fetch_add(1, std::memory_order_relaxed);

    // "GET /path HTTP/1.1"
    std::size_t line_end = request.find("\r\n");
    std::string line = request.substr(
        0, line_end == std::string::npos ? request.size() : line_end);
    std::size_t sp1 = line.find(' ');
    std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);

    HttpResponse resp;
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
        resp = {405, "text/plain; charset=utf-8", "malformed request\n"};
    } else if (line.substr(0, sp1) != "GET") {
        resp = {405, "text/plain; charset=utf-8", "GET only\n"};
    } else {
        std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
        std::size_t query = path.find('?');
        if (query != std::string::npos)
            path.resize(query);
        const Handler *handler = nullptr;
        for (const auto &[route, fn] : routes_) {
            if (route == path) {
                handler = &fn;
                break;
            }
        }
        if (handler != nullptr) {
            resp = (*handler)();
        } else {
            resp.status = 404;
            resp.body = "unknown path " + path + "; try:\n";
            for (const auto &[route, fn] : routes_)
                resp.body += "  " + route + "\n";
        }
    }

    std::string bytes = serialize(resp);
    writeAll(fd, bytes.data(), bytes.size());
}

std::optional<std::string>
httpGet(const std::string &addr, const std::string &path,
        std::string *error, int timeoutMs)
{
    std::string host;
    std::uint16_t port = 0;
    if (!parseAddr(addr, &host, &port, error))
        return std::nullopt;

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return std::nullopt;
    }
    setSocketTimeout(fd, timeoutMs);

    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(port);
    inet_pton(AF_INET, host.c_str(), &sin.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&sin),
                  sizeof sin) < 0) {
        if (error)
            *error = "connect " + addr + ": " + std::strerror(errno);
        ::close(fd);
        return std::nullopt;
    }

    std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + addr +
                          "\r\nConnection: close\r\n\r\n";
    if (!writeAll(fd, request.data(), request.size())) {
        if (error)
            *error = "send " + addr + ": " + std::strerror(errno);
        ::close(fd);
        return std::nullopt;
    }

    std::string response;
    char buf[4096];
    for (;;) {
        ssize_t n = recvRetry(fd, buf, sizeof buf);
        if (n < 0) {
            if (error)
                *error = "recv " + addr + ": " + std::strerror(errno);
            ::close(fd);
            return std::nullopt;
        }
        if (n == 0)
            break;
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);

    std::size_t header_end = response.find("\r\n\r\n");
    if (header_end == std::string::npos) {
        if (error)
            *error = "malformed HTTP response from " + addr;
        return std::nullopt;
    }
    // "HTTP/1.1 200 OK"
    std::size_t sp = response.find(' ');
    int status = 0;
    if (sp != std::string::npos)
        status = std::atoi(response.c_str() + sp + 1);
    if (status != 200) {
        if (error) {
            std::size_t line_end = response.find("\r\n");
            *error = "HTTP " + response.substr(0, line_end) + " for " +
                     path;
        }
        return std::nullopt;
    }
    return response.substr(header_end + 4);
}

} // namespace vsnoop
