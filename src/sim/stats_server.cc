#include "sim/stats_server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "sim/logging.hh"
#include "sim/slog.hh"

namespace vsnoop
{

namespace
{

/** Cap on the request-line + header section of a request. */
constexpr std::size_t kMaxHeaderBytes = 16 * 1024;

/**
 * Split "host:port" and parse both halves.  Only IPv4 dotted quads
 * (and the empty host, meaning INADDR_ANY) are accepted — the
 * embedded server is a debugging endpoint, not a general listener.
 */
bool
parseAddr(const std::string &addr, std::string *host,
          std::uint16_t *port, std::string *error)
{
    std::size_t colon = addr.rfind(':');
    if (colon == std::string::npos) {
        if (error)
            *error = "expected host:port, got '" + addr + "'";
        return false;
    }
    *host = addr.substr(0, colon);
    std::string port_str = addr.substr(colon + 1);
    char *end = nullptr;
    unsigned long parsed = std::strtoul(port_str.c_str(), &end, 10);
    if (end == port_str.c_str() || *end != '\0' || parsed > 65535) {
        if (error)
            *error = "invalid port '" + port_str + "'";
        return false;
    }
    *port = static_cast<std::uint16_t>(parsed);
    if (host->empty())
        *host = "0.0.0.0";
    in_addr probe{};
    if (inet_pton(AF_INET, host->c_str(), &probe) != 1) {
        if (error)
            *error = "invalid IPv4 address '" + *host +
                     "' (use a dotted quad, e.g. 127.0.0.1)";
        return false;
    }
    return true;
}

void
setSocketTimeout(int fd, int timeout_ms)
{
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

bool
writeAll(int fd, const char *data, std::size_t size)
{
    while (size > 0) {
        ssize_t n = ::send(fd, data, size, MSG_NOSIGNAL);
        if (n < 0 && errno == EINTR)
            continue; // interrupted by a signal, not an error
        if (n <= 0)
            return false;
        data += n;
        size -= static_cast<std::size_t>(n);
    }
    return true;
}

bool
writeAll(int fd, std::string_view bytes)
{
    return writeAll(fd, bytes.data(), bytes.size());
}

/** recv() that retries EINTR (socket timeouts still return -1). */
ssize_t
recvRetry(int fd, char *buf, std::size_t size)
{
    for (;;) {
        ssize_t n = ::recv(fd, buf, size, 0);
        if (n < 0 && errno == EINTR)
            continue;
        return n;
    }
}

const char *
statusText(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 413: return "Payload Too Large";
      case 500: return "Internal Server Error";
      case 503: return "Service Unavailable";
      default: return "Error";
    }
}

std::string
serialize(const HttpResponse &resp, const std::string &requestId)
{
    std::string out = "HTTP/1.1 ";
    out += std::to_string(resp.status);
    out += ' ';
    out += statusText(resp.status);
    out += "\r\nContent-Type: ";
    out += resp.contentType;
    if (!requestId.empty()) {
        out += "\r\nX-Request-Id: ";
        out += requestId;
    }
    out += "\r\nContent-Length: ";
    out += std::to_string(resp.body.size());
    out += "\r\nConnection: close\r\n\r\n";
    out += resp.body;
    return out;
}

/**
 * Clamp a client-supplied request id to something safe to echo in
 * a header and embed in a JSON log line: printable ASCII, bounded
 * length.  headerValue() already stripped the line breaks.
 */
std::string
sanitizeRequestId(std::string id)
{
    if (id.size() > 128)
        id.resize(128);
    for (char &c : id)
        if (c < 0x21 || c > 0x7e)
            c = '_';
    return id;
}

HttpResponse
textResponse(int status, std::string body)
{
    HttpResponse resp;
    resp.status = status;
    resp.body = std::move(body);
    return resp;
}

bool
asciiEqualsIgnoreCase(std::string_view a, std::string_view b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i)
        if (std::tolower(static_cast<unsigned char>(a[i])) !=
            std::tolower(static_cast<unsigned char>(b[i])))
            return false;
    return true;
}

/**
 * Value of header @p name within the header block (request line
 * included; it never matches a "name:" pattern).  Empty when
 * absent.  Leading/trailing blanks of the value are trimmed.
 */
std::string
headerValue(std::string_view headers, std::string_view name)
{
    std::size_t pos = 0;
    while (pos < headers.size()) {
        std::size_t eol = headers.find("\r\n", pos);
        if (eol == std::string_view::npos)
            eol = headers.size();
        std::string_view line = headers.substr(pos, eol - pos);
        std::size_t colon = line.find(':');
        if (colon != std::string_view::npos &&
            asciiEqualsIgnoreCase(line.substr(0, colon), name)) {
            std::string_view value = line.substr(colon + 1);
            while (!value.empty() &&
                   (value.front() == ' ' || value.front() == '\t'))
                value.remove_prefix(1);
            while (!value.empty() &&
                   (value.back() == ' ' || value.back() == '\r'))
                value.remove_suffix(1);
            return std::string(value);
        }
        pos = eol + 2;
    }
    return "";
}

} // namespace

StatsServer::~StatsServer()
{
    stop();
}

void
StatsServer::route(std::string path, Handler handler)
{
    vsnoop_assert(!running(),
                  "routes must be registered before start()");
    vsnoop_assert(!metricsRegistered_,
                  "routes must be registered before registerMetrics()");
    vsnoop_assert(!path.empty() && path[0] == '/',
                  "route path must start with '/'");
    routes_.emplace_back(std::move(path), std::move(handler));
}

void
StatsServer::routePrefix(std::string method, std::string prefix,
                         RequestHandler handler)
{
    vsnoop_assert(!running(),
                  "routes must be registered before start()");
    vsnoop_assert(!metricsRegistered_,
                  "routes must be registered before registerMetrics()");
    vsnoop_assert(!prefix.empty() && prefix[0] == '/',
                  "route prefix must start with '/'");
    vsnoop_assert(!method.empty(), "route method must be non-empty");
    prefixRoutes_.push_back(
        {std::move(method), std::move(prefix), std::move(handler)});
}

std::uint64_t
StatsServer::clientErrors(int status) const
{
    switch (status) {
      case 400: return resp400_.load(std::memory_order_relaxed);
      case 408: return resp408_.load(std::memory_order_relaxed);
      case 413: return resp413_.load(std::memory_order_relaxed);
      default: return 0;
    }
}

void
StatsServer::registerMetrics(MetricsRegistry &registry)
{
    vsnoop_assert(!metricsRegistered_,
                  "server metrics registered twice");
    requestsTotalId_ = registry.addCounter(
        "vsnoop_http_requests_total",
        "HTTP requests whose headers were fully received.");
    const char *errHelp =
        "Client-error responses sent, by status code.";
    resp400Id_ = registry.addCounter("vsnoop_http_responses_total",
                                     errHelp, {{"code", "400"}});
    resp408Id_ = registry.addCounter("vsnoop_http_responses_total",
                                     errHelp, {{"code", "408"}});
    resp413Id_ = registry.addCounter("vsnoop_http_responses_total",
                                     errHelp, {{"code", "413"}});

    auto addRoute = [this](std::string key) {
        auto rl = std::make_unique<RouteLatency>();
        rl->key = std::move(key);
        routeLatency_.push_back(std::move(rl));
    };
    for (const auto &[route, fn] : routes_)
        addRoute("GET " + route);
    for (const PrefixRoute &route : prefixRoutes_)
        addRoute(route.method + " " + route.prefix);
    // Requests that never reach a handler: 404s, 405s, malformed
    // or over-limit requests cut off before dispatch.
    addRoute("other");
    for (const auto &rl : routeLatency_)
        routeLatencyIds_.push_back(registry.addHistogram(
            "vsnoop_http_request_duration_us",
            "Wall time from first byte read to response written, "
            "microseconds.",
            {{"route", rl->key}}));
    metricsRegistered_ = true;
}

void
StatsServer::stageMetrics(MetricsRegistry &registry) const
{
    if (!metricsRegistered_)
        return;
    registry.set(requestsTotalId_, static_cast<double>(
                                       requestsServed()));
    registry.set(resp400Id_, static_cast<double>(clientErrors(400)));
    registry.set(resp408Id_, static_cast<double>(clientErrors(408)));
    registry.set(resp413Id_, static_cast<double>(clientErrors(413)));
    for (std::size_t i = 0; i < routeLatency_.size(); ++i) {
        const RouteLatency &rl = *routeLatency_[i];
        LatencyHistogram copy;
        {
            std::lock_guard<std::mutex> lock(rl.mutex);
            copy = rl.hist;
        }
        registry.setHistogram(routeLatencyIds_[i], copy);
    }
}

std::string
StatsServer::nextRequestId()
{
    char buf[48];
    std::snprintf(buf, sizeof buf, "r%llx-%llu",
                  static_cast<unsigned long long>(idEpochMs_),
                  static_cast<unsigned long long>(
                      idCounter_.fetch_add(
                          1, std::memory_order_relaxed) + 1));
    return buf;
}

void
StatsServer::recordAccess(const std::string &method,
                          const std::string &path,
                          const std::string &requestId, int status,
                          std::size_t bytes, std::uint64_t durUs,
                          std::size_t routeIndex)
{
    if (status == 400)
        resp400_.fetch_add(1, std::memory_order_relaxed);
    else if (status == 408)
        resp408_.fetch_add(1, std::memory_order_relaxed);
    else if (status == 413)
        resp413_.fetch_add(1, std::memory_order_relaxed);
    slog().log(LogLevel::Info, "http_access",
               {LogField("method", method), LogField("path", path),
                LogField("status", status),
                LogField("bytes", static_cast<std::uint64_t>(bytes)),
                LogField("dur_us", durUs),
                LogField("request_id", requestId)});
    if (metricsRegistered_ && routeIndex < routeLatency_.size()) {
        RouteLatency &rl = *routeLatency_[routeIndex];
        std::lock_guard<std::mutex> lock(rl.mutex);
        rl.hist.sample(durUs);
    }
}

void
StatsServer::setReadTimeoutMs(int ms)
{
    vsnoop_assert(!running(), "set the timeout before start()");
    vsnoop_assert(ms > 0, "read timeout must be positive");
    readTimeoutMs_ = ms;
}

void
StatsServer::setMaxBodyBytes(std::size_t bytes)
{
    vsnoop_assert(!running(), "set the body limit before start()");
    maxBodyBytes_ = bytes;
}

void
StatsServer::setWorkers(unsigned workers)
{
    vsnoop_assert(!running(), "set the worker count before start()");
    numWorkers_ = std::max(1u, workers);
}

bool
StatsServer::start(const std::string &addr, std::string *error)
{
    vsnoop_assert(!running(), "stats server started twice");
    if (!parseAddr(addr, &host_, &port_, error))
        return false;

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(port_);
    inet_pton(AF_INET, host_.c_str(), &sin.sin_addr);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&sin), sizeof sin) < 0 ||
        ::listen(fd, 64) < 0) {
        if (error)
            *error = "cannot listen on " + addr + ": " +
                     std::strerror(errno);
        ::close(fd);
        return false;
    }

    // Resolve port 0 to the kernel-assigned ephemeral port.
    socklen_t len = sizeof sin;
    if (getsockname(fd, reinterpret_cast<sockaddr *>(&sin), &len) == 0)
        port_ = ntohs(sin.sin_port);

    listenFd_ = fd;
    idEpochMs_ = wallClockMs();
    stopping_.store(false, std::memory_order_relaxed);
    acceptThread_ = std::thread(&StatsServer::acceptLoop, this);
    workers_.reserve(numWorkers_);
    for (unsigned w = 0; w < numWorkers_; ++w)
        workers_.emplace_back(&StatsServer::workerLoop, this);
    return true;
}

std::string
StatsServer::address() const
{
    return host_ + ":" + std::to_string(port_);
}

void
StatsServer::stop()
{
    if (!running())
        return;
    stopping_.store(true, std::memory_order_relaxed);
    // Unblock accept(); on Linux this makes it return with an
    // error, after which the loop observes stopping_ and exits.
    ::shutdown(listenFd_, SHUT_RDWR);
    if (acceptThread_.joinable())
        acceptThread_.join();
    queueCv_.notify_all();
    for (std::thread &worker : workers_)
        if (worker.joinable())
            worker.join();
    workers_.clear();
    // Connections accepted but never picked up by a worker.
    for (int fd : pending_)
        ::close(fd);
    pending_.clear();
    ::close(listenFd_);
    listenFd_ = -1;
}

void
StatsServer::acceptLoop()
{
    while (!stopping_.load(std::memory_order_relaxed)) {
        int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load(std::memory_order_relaxed))
                break;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            break; // listening socket is gone; nothing to serve
        }
        {
            std::lock_guard<std::mutex> lock(queueMutex_);
            pending_.push_back(fd);
        }
        queueCv_.notify_one();
    }
}

void
StatsServer::workerLoop()
{
    for (;;) {
        int fd = -1;
        {
            std::unique_lock<std::mutex> lock(queueMutex_);
            queueCv_.wait(lock, [&] {
                return !pending_.empty() ||
                       stopping_.load(std::memory_order_relaxed);
            });
            if (pending_.empty())
                return; // stopping, queue drained
            fd = pending_.front();
            pending_.pop_front();
        }
        handleConnection(fd);
        ::close(fd);
    }
}

void
StatsServer::handleConnection(int fd)
{
    auto t0 = std::chrono::steady_clock::now();
    setSocketTimeout(fd, readTimeoutMs_);

    std::string method = "-";
    std::string path = "-";
    std::string requestId;
    // Until dispatch picks a real route, latency accrues to the
    // trailing "other" bucket (when metrics are registered at all).
    std::size_t routeIndex =
        routeLatency_.empty() ? 0 : routeLatency_.size() - 1;

    auto elapsedUs = [&t0] {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
    };
    // Send one buffered response and account for it: access log
    // line, error counters, route latency sample.
    auto reply = [&](const HttpResponse &resp) {
        if (requestId.empty())
            requestId = nextRequestId();
        writeAll(fd, serialize(resp, requestId));
        recordAccess(method, path, requestId, resp.status,
                     resp.body.size(), elapsedUs(), routeIndex);
    };

    // Read until the end of the request headers (or the cap).  A
    // client that stalls here is cut off by the socket timeout —
    // it holds one worker for at most readTimeoutMs_, never the
    // accept loop.
    std::string data;
    char buf[4096];
    std::size_t header_end;
    while ((header_end = data.find("\r\n\r\n")) == std::string::npos) {
        if (data.size() >= kMaxHeaderBytes) {
            reply(textResponse(400, "request headers too large\n"));
            return;
        }
        ssize_t n = recvRetry(fd, buf, sizeof buf);
        if (n == 0 || (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))) {
            // EOF or stall before a full request: only answer the
            // stall — an immediate close has nobody listening.
            if (n < 0 && !data.empty())
                reply(textResponse(408, "request timed out\n"));
            return;
        }
        if (n < 0)
            return;
        data.append(buf, static_cast<std::size_t>(n));
    }

    requests_.fetch_add(1, std::memory_order_relaxed);

    // The client's correlation id, or a generated one — known from
    // here on, so every later error response echoes it.
    std::string_view headers =
        std::string_view(data).substr(0, header_end);
    requestId =
        sanitizeRequestId(headerValue(headers, "x-request-id"));
    if (requestId.empty())
        requestId = nextRequestId();

    // "METHOD /path HTTP/1.1"
    std::size_t line_end = data.find("\r\n");
    std::string line = data.substr(0, line_end);
    std::size_t sp1 = line.find(' ');
    std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos
                                 : line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos ||
        line.compare(sp2 + 1, 5, "HTTP/") != 0) {
        reply(textResponse(400, "malformed request line\n"));
        return;
    }

    HttpRequest request;
    request.method = line.substr(0, sp1);
    request.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    std::size_t query = request.path.find('?');
    if (query != std::string::npos) {
        request.query = request.path.substr(query + 1);
        request.path.resize(query);
    }
    request.requestId = requestId;
    method = request.method;
    path = request.path;

    if (!headerValue(headers, "transfer-encoding").empty()) {
        reply(textResponse(
                  400, "chunked request bodies are not supported;"
                       " send Content-Length\n"));
        return;
    }
    std::size_t content_length = 0;
    std::string length_str = headerValue(headers, "content-length");
    if (!length_str.empty()) {
        char *end = nullptr;
        unsigned long long parsed =
            std::strtoull(length_str.c_str(), &end, 10);
        if (end == length_str.c_str() || *end != '\0') {
            reply(textResponse(400, "invalid Content-Length\n"));
            return;
        }
        content_length = static_cast<std::size_t>(parsed);
    }
    if (content_length > maxBodyBytes_) {
        reply(textResponse(413, "request body exceeds the " +
                                    std::to_string(maxBodyBytes_) +
                                    "-byte limit\n"));
        return;
    }

    request.body = data.substr(header_end + 4);
    while (request.body.size() < content_length) {
        ssize_t n = recvRetry(fd, buf, sizeof buf);
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            reply(textResponse(408, "request body timed out\n"));
            return;
        }
        if (n <= 0) {
            reply(textResponse(400, "truncated request body\n"));
            return;
        }
        request.body.append(buf, static_cast<std::size_t>(n));
    }
    request.body.resize(content_length);

    // Dispatch: exact GET routes first, then the longest matching
    // method + prefix route.  A path known under some other method
    // answers 405 instead of 404.
    HttpResponse resp;
    const Handler *exact = nullptr;
    bool path_known = false;
    for (std::size_t i = 0; i < routes_.size(); ++i) {
        if (routes_[i].first == request.path) {
            exact = &routes_[i].second;
            path_known = true;
            if (request.method == "GET")
                routeIndex = i;
            break;
        }
    }
    if (exact != nullptr && request.method == "GET") {
        resp = (*exact)();
    } else {
        const PrefixRoute *best = nullptr;
        for (std::size_t i = 0; i < prefixRoutes_.size(); ++i) {
            const PrefixRoute &route = prefixRoutes_[i];
            if (request.path.rfind(route.prefix, 0) != 0)
                continue;
            path_known = true;
            if (route.method != request.method)
                continue;
            if (best == nullptr ||
                route.prefix.size() > best->prefix.size()) {
                best = &route;
                routeIndex = routes_.size() + i;
            }
        }
        if (best != nullptr) {
            resp = best->handler(request);
        } else if (path_known) {
            routeIndex =
                routeLatency_.empty() ? 0 : routeLatency_.size() - 1;
            resp = textResponse(405, "method " + request.method +
                                         " not allowed for " +
                                         request.path + "\n");
        } else {
            resp.status = 404;
            resp.body = "unknown path " + request.path + "; try:\n";
            for (const auto &[route, fn] : routes_)
                resp.body += "  GET " + route + "\n";
            for (const PrefixRoute &route : prefixRoutes_)
                resp.body +=
                    "  " + route.method + " " + route.prefix + "...\n";
        }
    }

    if (!resp.stream) {
        reply(resp);
        return;
    }

    // Chunked streaming response: the handler produces pieces on
    // this thread; each write returns whether the client is still
    // there so long-running producers can stop early.
    std::string head = "HTTP/1.1 ";
    head += std::to_string(resp.status);
    head += ' ';
    head += statusText(resp.status);
    head += "\r\nContent-Type: ";
    head += resp.contentType;
    head += "\r\nX-Request-Id: ";
    head += requestId;
    head += "\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n";
    bool alive = writeAll(fd, head);
    std::size_t streamed = 0;
    ChunkWriter writer = [fd, &alive, &streamed](std::string_view piece) {
        if (!alive || piece.empty())
            return alive;
        char size_line[32];
        std::snprintf(size_line, sizeof size_line, "%zx\r\n",
                      piece.size());
        alive = writeAll(fd, size_line) && writeAll(fd, piece) &&
                writeAll(fd, "\r\n");
        if (alive)
            streamed += piece.size();
        return alive;
    };
    resp.stream(writer);
    if (alive)
        writeAll(fd, "0\r\n\r\n");
    recordAccess(method, path, requestId, resp.status, streamed,
                 elapsedUs(), routeIndex);
}

namespace
{

/** Decode a chunked transfer-encoded payload; false when malformed. */
bool
decodeChunked(std::string_view raw, std::string *out)
{
    std::size_t pos = 0;
    for (;;) {
        std::size_t eol = raw.find("\r\n", pos);
        if (eol == std::string_view::npos)
            return false;
        // Chunk extensions (";...") are legal; ignore them.
        std::string size_str(raw.substr(pos, eol - pos));
        std::size_t semi = size_str.find(';');
        if (semi != std::string::npos)
            size_str.resize(semi);
        char *end = nullptr;
        unsigned long long size =
            std::strtoull(size_str.c_str(), &end, 16);
        if (end == size_str.c_str())
            return false;
        pos = eol + 2;
        if (size == 0)
            return true; // trailers, if any, are ignored
        if (pos + size + 2 > raw.size())
            return false;
        out->append(raw.substr(pos, size));
        pos += size;
        if (raw.compare(pos, 2, "\r\n") != 0)
            return false;
        pos += 2;
    }
}

} // namespace

std::optional<HttpReply>
httpRequest(const std::string &addr, const std::string &method,
            const std::string &path, const std::string &body,
            const std::string &contentType, std::string *error,
            int timeoutMs, const std::string &requestId)
{
    std::string host;
    std::uint16_t port = 0;
    if (!parseAddr(addr, &host, &port, error))
        return std::nullopt;

    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return std::nullopt;
    }
    setSocketTimeout(fd, timeoutMs);

    sockaddr_in sin{};
    sin.sin_family = AF_INET;
    sin.sin_port = htons(port);
    inet_pton(AF_INET, host.c_str(), &sin.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr *>(&sin),
                  sizeof sin) < 0) {
        if (error)
            *error = "connect " + addr + ": " + std::strerror(errno);
        ::close(fd);
        return std::nullopt;
    }

    std::string request = method + " " + path + " HTTP/1.1\r\nHost: " +
                          addr + "\r\nConnection: close\r\n";
    if (!requestId.empty())
        request += "X-Request-Id: " + sanitizeRequestId(requestId) +
                   "\r\n";
    if (!body.empty()) {
        request += "Content-Type: " + contentType + "\r\n";
        request += "Content-Length: " + std::to_string(body.size()) +
                   "\r\n";
    }
    request += "\r\n";
    request += body;
    if (!writeAll(fd, request)) {
        if (error)
            *error = "send " + addr + ": " + std::strerror(errno);
        ::close(fd);
        return std::nullopt;
    }

    std::string response;
    char buf[4096];
    for (;;) {
        ssize_t n = recvRetry(fd, buf, sizeof buf);
        if (n < 0) {
            if (error)
                *error = "recv " + addr + ": " + std::strerror(errno);
            ::close(fd);
            return std::nullopt;
        }
        if (n == 0)
            break;
        response.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);

    std::size_t header_end = response.find("\r\n\r\n");
    if (header_end == std::string::npos) {
        if (error)
            *error = "malformed HTTP response from " + addr;
        return std::nullopt;
    }
    // "HTTP/1.1 200 OK"
    std::size_t sp = response.find(' ');
    if (sp == std::string::npos || sp > header_end) {
        if (error)
            *error = "malformed HTTP status line from " + addr;
        return std::nullopt;
    }
    HttpReply reply;
    reply.status = std::atoi(response.c_str() + sp + 1);

    std::string_view headers =
        std::string_view(response).substr(0, header_end);
    reply.requestId = headerValue(headers, "x-request-id");
    std::string_view payload =
        std::string_view(response).substr(header_end + 4);
    std::string transfer = headerValue(headers, "transfer-encoding");
    if (asciiEqualsIgnoreCase(transfer, "chunked")) {
        if (!decodeChunked(payload, &reply.body)) {
            if (error)
                *error = "malformed chunked response from " + addr;
            return std::nullopt;
        }
    } else {
        std::string length_str = headerValue(headers, "content-length");
        reply.body.assign(payload);
        if (!length_str.empty()) {
            std::size_t length = static_cast<std::size_t>(
                std::strtoull(length_str.c_str(), nullptr, 10));
            if (reply.body.size() > length)
                reply.body.resize(length);
        }
    }
    return reply;
}

std::optional<std::string>
httpGet(const std::string &addr, const std::string &path,
        std::string *error, int timeoutMs)
{
    std::optional<HttpReply> reply =
        httpRequest(addr, "GET", path, "", "", error, timeoutMs);
    if (!reply)
        return std::nullopt;
    if (reply->status != 200) {
        if (error)
            *error = "HTTP status " + std::to_string(reply->status) +
                     " for " + path;
        return std::nullopt;
    }
    return std::move(reply->body);
}

} // namespace vsnoop
