/**
 * @file
 * Fundamental scalar types shared by every vsnoop library.
 *
 * The simulator measures time in integer ticks (one tick == one core
 * clock cycle).  Identifiers for cores, virtual machines and virtual
 * CPUs are small integers; the invalid sentinel for each is the
 * maximum value of the underlying type so that a default-initialized
 * id is never mistaken for a real one.
 */

#ifndef VSNOOP_SIM_TYPES_HH_
#define VSNOOP_SIM_TYPES_HH_

#include <cstdint>
#include <limits>

namespace vsnoop
{

/** Simulated time in core clock cycles. */
using Tick = std::uint64_t;

/** Sentinel for "no scheduled time". */
constexpr Tick kMaxTick = std::numeric_limits<Tick>::max();

/** Physical core index within the simulated chip. */
using CoreId = std::uint16_t;

/** Virtual machine identifier assigned by the hypervisor. */
using VmId = std::uint16_t;

/** Virtual CPU index, unique within the whole system. */
using VCpuId = std::uint16_t;

/** Sentinel core id: "no core". */
constexpr CoreId kInvalidCore = std::numeric_limits<CoreId>::max();

/** Sentinel VM id: "no VM"; also used for hypervisor-owned pages. */
constexpr VmId kInvalidVm = std::numeric_limits<VmId>::max();

/** Sentinel vCPU id. */
constexpr VCpuId kInvalidVCpu = std::numeric_limits<VCpuId>::max();

/** Number of ticks in one simulated millisecond (1 GHz clock). */
constexpr Tick kTicksPerMs = 1'000'000;

} // namespace vsnoop

#endif // VSNOOP_SIM_TYPES_HH_
