/**
 * @file
 * A compact set of core ids, used for vCPU maps and snoop
 * destination sets.
 *
 * The paper's vCPU map register is an n-bit vector for n cores
 * (Section IV-A); CoreSet is exactly that, backed by a 64-bit word,
 * which covers the largest configuration the paper studies (64
 * cores, Figure 2).
 */

#ifndef VSNOOP_SIM_CORE_SET_HH_
#define VSNOOP_SIM_CORE_SET_HH_

#include <bit>
#include <cstdint>
#include <string>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace vsnoop
{

/**
 * Value-type bitset of core ids (up to 64 cores).
 */
class CoreSet
{
  public:
    /** Maximum number of cores representable. */
    static constexpr std::size_t kMaxCores = 64;

    constexpr CoreSet() = default;

    /** Build from a raw bitmask. */
    static constexpr CoreSet
    fromMask(std::uint64_t mask)
    {
        CoreSet s;
        s.bits_ = mask;
        return s;
    }

    /** The set {0, 1, ..., n-1}. */
    static CoreSet
    firstN(std::size_t n)
    {
        vsnoop_assert(n <= kMaxCores, "CoreSet supports at most 64 cores");
        if (n == kMaxCores)
            return fromMask(~std::uint64_t{0});
        return fromMask((std::uint64_t{1} << n) - 1);
    }

    /** A singleton set. */
    static CoreSet
    single(CoreId core)
    {
        CoreSet s;
        s.add(core);
        return s;
    }

    constexpr std::uint64_t mask() const { return bits_; }
    constexpr bool empty() const { return bits_ == 0; }
    constexpr std::size_t count() const { return std::popcount(bits_); }

    bool
    contains(CoreId core) const
    {
        vsnoop_assert(core < kMaxCores, "core id out of range: ", core);
        return (bits_ >> core) & 1U;
    }

    void
    add(CoreId core)
    {
        vsnoop_assert(core < kMaxCores, "core id out of range: ", core);
        bits_ |= std::uint64_t{1} << core;
    }

    void
    remove(CoreId core)
    {
        vsnoop_assert(core < kMaxCores, "core id out of range: ", core);
        bits_ &= ~(std::uint64_t{1} << core);
    }

    constexpr CoreSet
    operator|(const CoreSet &other) const
    {
        return fromMask(bits_ | other.bits_);
    }

    constexpr CoreSet
    operator&(const CoreSet &other) const
    {
        return fromMask(bits_ & other.bits_);
    }

    /** Set difference: cores in this set but not in @p other. */
    constexpr CoreSet
    minus(const CoreSet &other) const
    {
        return fromMask(bits_ & ~other.bits_);
    }

    CoreSet &operator|=(const CoreSet &other)
    {
        bits_ |= other.bits_;
        return *this;
    }

    constexpr bool operator==(const CoreSet &) const = default;

    /** Lowest core id in the set (undefined on empty sets). */
    CoreId
    first() const
    {
        vsnoop_assert(!empty(), "first() on empty CoreSet");
        return static_cast<CoreId>(std::countr_zero(bits_));
    }

    /** Invoke @p fn for each member, in increasing core id order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        std::uint64_t rest = bits_;
        while (rest != 0) {
            auto core = static_cast<CoreId>(std::countr_zero(rest));
            rest &= rest - 1;
            fn(core);
        }
    }

    /** Render as e.g. "{0,1,5}". */
    std::string
    toString() const
    {
        std::string out = "{";
        bool sep = false;
        forEach([&](CoreId c) {
            if (sep)
                out += ",";
            out += std::to_string(c);
            sep = true;
        });
        out += "}";
        return out;
    }

  private:
    std::uint64_t bits_ = 0;
};

} // namespace vsnoop

#endif // VSNOOP_SIM_CORE_SET_HH_
