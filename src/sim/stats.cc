#include "sim/stats.hh"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"

namespace vsnoop
{

void
Distribution::sample(double value)
{
    count_++;
    sum_ += value;
    // Welford's online update: numerically stable for samples with
    // a large common offset, unlike sum-of-squares accumulation.
    double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void
Distribution::reset()
{
    *this = Distribution();
}

double
Distribution::variance() const
{
    if (count_ == 0)
        return 0.0;
    double var = m2_ / static_cast<double>(count_);
    return var > 0.0 ? var : 0.0;
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double bucket_width, std::size_t bucket_count)
    : bucketWidth_(bucket_width), buckets_(bucket_count, 0)
{
    vsnoop_assert(bucket_width > 0.0, "histogram bucket width must be > 0");
    vsnoop_assert(bucket_count > 0, "histogram needs at least one bucket");
}

void
Histogram::sample(double value)
{
    vsnoop_assert(value >= 0.0,
                  "negative histogram sample ", value,
                  " (sampled quantities are non-negative by "
                  "construction; fix the caller's accounting)");
    count_++;
    auto idx = static_cast<std::size_t>(value / bucketWidth_);
    if (idx >= buckets_.size()) {
        overflow_++;
    } else {
        buckets_[idx]++;
    }
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    count_ = 0;
}

double
Histogram::cdfAt(double value) const
{
    if (count_ == 0)
        return 0.0;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        double upper = bucketWidth_ * static_cast<double>(i + 1);
        if (upper > value)
            break;
        acc += buckets_[i];
    }
    return static_cast<double>(acc) / static_cast<double>(count_);
}

double
Histogram::quantile(double q) const
{
    vsnoop_assert(q >= 0.0 && q <= 1.0, "quantile ", q, " outside [0,1]");
    if (count_ == 0)
        return 0.0;
    auto need = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    // q == 0 would otherwise satisfy "acc >= 0" at bucket 0 even
    // when that bucket is empty; the 0th quantile is the smallest
    // sample, i.e. the first *populated* bucket.
    if (need == 0)
        need = 1;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        acc += buckets_[i];
        if (acc >= need)
            return bucketWidth_ * static_cast<double>(i + 1);
    }
    // Quantile lies in the overflow bucket: the histogram only
    // knows the value exceeds the top edge, so say so explicitly
    // instead of returning the (finite) top edge.
    return std::numeric_limits<double>::infinity();
}

std::vector<std::pair<double, double>>
Histogram::cdfPoints() const
{
    std::vector<std::pair<double, double>> points;
    if (count_ == 0)
        return points;
    std::uint64_t acc = 0;
    bool seen = false;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        acc += buckets_[i];
        if (buckets_[i] > 0)
            seen = true;
        if (seen) {
            points.emplace_back(
                bucketWidth_ * static_cast<double>(i + 1),
                static_cast<double>(acc) / static_cast<double>(count_));
        }
    }
    if (overflow_ > 0)
        points.emplace_back(std::numeric_limits<double>::infinity(), 1.0);
    return points;
}

void
StatSet::add(const std::string &name, const Counter &counter)
{
    vsnoop_assert(counters_.count(name) == 0 && dists_.count(name) == 0,
                  "duplicate stat name '", name, "'");
    counters_[name] = &counter;
}

void
StatSet::add(const std::string &name, const Distribution &dist)
{
    vsnoop_assert(counters_.count(name) == 0 && dists_.count(name) == 0,
                  "duplicate stat name '", name, "'");
    dists_[name] = &dist;
}

std::string
StatSet::dump() const
{
    std::ostringstream os;
    for (const auto &[name, counter] : counters_)
        os << name << " " << counter->value() << "\n";
    for (const auto &[name, dist] : dists_) {
        os << name << ".count " << dist->count() << "\n"
           << name << ".mean " << dist->mean() << "\n"
           << name << ".stddev " << dist->stddev() << "\n"
           << name << ".min " << dist->min() << "\n"
           << name << ".max " << dist->max() << "\n";
    }
    return os.str();
}

void
LatencyHistogram::sample(std::uint64_t value)
{
    buckets_[bucketFor(value)]++;
    count_++;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void
LatencyHistogram::reset()
{
    *this = LatencyHistogram();
}

void
LatencyHistogram::merge(const LatencyHistogram &other)
{
    if (other.count_ == 0)
        return;
    for (std::size_t i = 0; i < kNumBuckets; ++i)
        buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
LatencyHistogram::mean() const
{
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
}

std::size_t
LatencyHistogram::bucketFor(std::uint64_t value)
{
    // bit_width(v) == 1 + floor(log2(v)) for v > 0, so bucket i >= 1
    // collects exactly the values with i significant bits.
    if (value == 0)
        return 0;
    return std::min<std::size_t>(std::bit_width(value), kNumBuckets - 1);
}

std::uint64_t
LatencyHistogram::bucketLowerEdge(std::size_t i)
{
    vsnoop_assert(i < kNumBuckets, "bucket ", i, " out of range");
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

std::uint64_t
LatencyHistogram::bucketUpperEdge(std::size_t i)
{
    vsnoop_assert(i < kNumBuckets, "bucket ", i, " out of range");
    return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
}

std::uint64_t
LatencyHistogram::quantile(double q) const
{
    vsnoop_assert(q >= 0.0 && q <= 1.0, "quantile ", q, " outside [0,1]");
    if (count_ == 0)
        return 0;
    // Smallest rank whose cumulative fraction reaches q (at least 1,
    // so quantile(0) answers with the minimum's bucket).
    auto need = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    need = std::max<std::uint64_t>(need, 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
        seen += buckets_[i];
        if (seen >= need)
            return std::clamp(bucketUpperEdge(i), min(), max_);
    }
    return max_;
}

void
LatencyHistogram::writeJson(JsonWriter &json) const
{
    std::size_t last = 0;
    for (std::size_t i = 0; i < kNumBuckets; ++i) {
        if (buckets_[i])
            last = i;
    }
    json.beginObject();
    json.key("count").value(count_);
    json.key("sum").value(sum_);
    json.key("min").value(min());
    json.key("max").value(max_);
    json.key("mean").value(mean());
    json.key("p50").value(quantile(0.5));
    json.key("p90").value(quantile(0.9));
    json.key("p99").value(quantile(0.99));
    json.key("buckets").beginArray();
    if (count_) {
        for (std::size_t i = 0; i <= last; ++i)
            json.value(buckets_[i]);
    }
    json.endArray();
    json.endObject();
}

std::string
StatSet::dumpJson() const
{
    JsonWriter json;
    json.beginObject();
    for (const auto &[name, counter] : counters_)
        json.key(name).value(counter->value());
    for (const auto &[name, dist] : dists_) {
        json.key(name).beginObject();
        json.key("count").value(dist->count());
        json.key("mean").value(dist->mean());
        json.key("stddev").value(dist->stddev());
        json.key("min").value(dist->min());
        json.key("max").value(dist->max());
        json.endObject();
    }
    json.endObject();
    return json.str();
}

namespace
{

/** Map a stat name onto the Prometheus metric-name grammar. */
std::string
sanitizeMetricName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        out += ok ? c : '_';
    }
    if (out.empty() || (out[0] >= '0' && out[0] <= '9'))
        out.insert(out.begin(), '_');
    return out;
}

} // namespace

StatSetExport::StatSetExport(const StatSet &set,
                             MetricsRegistry &registry,
                             const std::string &prefix)
    : registry_(&registry)
{
    for (const auto &[name, counter] : set.counters_) {
        Entry e;
        e.counter = counter;
        e.id = registry.addCounter(
            prefix + sanitizeMetricName(name) + "_total",
            "Simulator counter " + name + ".");
        entries_.push_back(e);
    }
    for (const auto &[name, dist] : set.dists_) {
        Entry e;
        e.dist = dist;
        std::string base = prefix + sanitizeMetricName(name);
        e.id = registry.addGauge(base + "_count",
                                 "Sample count of " + name + ".");
        e.meanId = registry.addGauge(base + "_mean",
                                     "Mean of " + name + ".");
        e.minId = registry.addGauge(base + "_min",
                                    "Minimum of " + name + ".");
        e.maxId = registry.addGauge(base + "_max",
                                    "Maximum of " + name + ".");
        entries_.push_back(e);
    }
}

void
StatSetExport::update()
{
    vsnoop_assert(registry_ != nullptr,
                  "update() on a default-constructed StatSetExport");
    for (const Entry &e : entries_) {
        if (e.counter != nullptr) {
            registry_->set(e.id,
                           static_cast<double>(e.counter->value()));
        } else {
            registry_->set(e.id,
                           static_cast<double>(e.dist->count()));
            registry_->set(e.meanId, e.dist->mean());
            registry_->set(e.minId, e.dist->min());
            registry_->set(e.maxId, e.dist->max());
        }
    }
}

} // namespace vsnoop
