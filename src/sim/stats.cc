#include "sim/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "sim/logging.hh"

namespace vsnoop
{

void
Distribution::sample(double value)
{
    count_++;
    sum_ += value;
    sumSq_ += value * value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void
Distribution::reset()
{
    *this = Distribution();
}

double
Distribution::variance() const
{
    if (count_ == 0)
        return 0.0;
    double m = mean();
    double var = sumSq_ / count_ - m * m;
    return var > 0.0 ? var : 0.0;
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double bucket_width, std::size_t bucket_count)
    : bucketWidth_(bucket_width), buckets_(bucket_count, 0)
{
    vsnoop_assert(bucket_width > 0.0, "histogram bucket width must be > 0");
    vsnoop_assert(bucket_count > 0, "histogram needs at least one bucket");
}

void
Histogram::sample(double value)
{
    count_++;
    if (value < 0.0)
        value = 0.0;
    auto idx = static_cast<std::size_t>(value / bucketWidth_);
    if (idx >= buckets_.size()) {
        overflow_++;
    } else {
        buckets_[idx]++;
    }
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    overflow_ = 0;
    count_ = 0;
}

double
Histogram::cdfAt(double value) const
{
    if (count_ == 0)
        return 0.0;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        double upper = bucketWidth_ * static_cast<double>(i + 1);
        if (upper > value)
            break;
        acc += buckets_[i];
    }
    return static_cast<double>(acc) / static_cast<double>(count_);
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    auto need = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        acc += buckets_[i];
        if (acc >= need)
            return bucketWidth_ * static_cast<double>(i + 1);
    }
    // Quantile lies in the overflow bucket.
    return bucketWidth_ * static_cast<double>(buckets_.size());
}

std::vector<std::pair<double, double>>
Histogram::cdfPoints() const
{
    std::vector<std::pair<double, double>> points;
    if (count_ == 0)
        return points;
    std::uint64_t acc = 0;
    bool seen = false;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        acc += buckets_[i];
        if (buckets_[i] > 0)
            seen = true;
        if (seen) {
            points.emplace_back(
                bucketWidth_ * static_cast<double>(i + 1),
                static_cast<double>(acc) / static_cast<double>(count_));
        }
    }
    if (overflow_ > 0)
        points.emplace_back(std::numeric_limits<double>::infinity(), 1.0);
    return points;
}

void
StatSet::add(const std::string &name, const Counter &counter)
{
    counters_[name] = &counter;
}

void
StatSet::add(const std::string &name, const Distribution &dist)
{
    dists_[name] = &dist;
}

std::string
StatSet::dump() const
{
    std::ostringstream os;
    for (const auto &[name, counter] : counters_)
        os << name << " " << counter->value() << "\n";
    for (const auto &[name, dist] : dists_) {
        os << name << ".mean " << dist->mean() << "\n"
           << name << ".count " << dist->count() << "\n";
    }
    return os.str();
}

} // namespace vsnoop
