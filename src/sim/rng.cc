#include "sim/rng.hh"

#include <cmath>

namespace vsnoop
{

std::uint64_t
Rng::geometric(double success_probability)
{
    if (success_probability >= 1.0)
        return 0;
    if (success_probability <= 0.0)
        return std::numeric_limits<std::uint64_t>::max();
    // Inverse transform sampling: floor(ln(U) / ln(1-p)).
    double u = uniform();
    // Guard against u == 0, where log would be -inf.
    if (u <= 0.0)
        u = 1e-12;
    double draws = std::log(u) / std::log1p(-success_probability);
    if (draws >= 1e18)
        return static_cast<std::uint64_t>(1e18);
    return static_cast<std::uint64_t>(draws);
}

std::uint32_t
Rng::zipf(std::uint32_t n, double skew)
{
    vsnoop_assert(n > 0, "Rng::zipf requires a nonempty range");
    if (n == 1)
        return 0;
    if (skew <= 0.0)
        return below(n);
    // Inverse-CDF approximation for a continuous power-law on
    // [1, n+1): X = ((n+1)^(1-s) - 1) * U + 1, then invert.  For
    // s == 1 the CDF is logarithmic instead.
    double u = uniform();
    double x;
    if (std::abs(skew - 1.0) < 1e-9) {
        x = std::pow(static_cast<double>(n) + 1.0, u);
    } else {
        double one_minus_s = 1.0 - skew;
        double top = std::pow(static_cast<double>(n) + 1.0, one_minus_s);
        x = std::pow(u * (top - 1.0) + 1.0, 1.0 / one_minus_s);
    }
    auto idx = static_cast<std::uint32_t>(x - 1.0);
    if (idx >= n)
        idx = n - 1;
    return idx;
}

} // namespace vsnoop
