/**
 * @file
 * Live-telemetry metrics registry.
 *
 * The simulator's statistics (sim/stats.hh) are thread-confined by
 * design: every Counter belongs to one SimSystem and is never read
 * from another thread.  Live monitoring needs the opposite — a
 * background HTTP server thread (sim/stats_server.hh) reading a
 * consistent view of values that simulation or sweep threads keep
 * updating.  MetricsRegistry bridges the two worlds without
 * perturbing the simulation:
 *
 *  - Registration happens up front, single-threaded: every series
 *    (name + label set) is added before freeze(); after freeze()
 *    the series list is immutable, so readers never see the
 *    registry resize.
 *
 *  - Updates are relaxed atomic stores into a staging array of
 *    doubles — safe from any number of writer threads as long as
 *    each series has one writer (the sweep gives every run its own
 *    series).
 *
 *  - Publication is a seqlock over a second array of doubles: one
 *    designated publisher thread calls publish(), which brackets a
 *    staging -> snapshot copy with sequence-counter increments.
 *    Readers copy the snapshot and retry if the sequence changed
 *    mid-copy, so every snapshot() result is a consistent point-in-
 *    time set.  All accesses are atomic (TSan-clean) and neither
 *    side ever blocks the other: the writer never waits for
 *    readers, and a reader only re-copies while a publish is in
 *    flight.
 *
 * The registry deliberately stores only doubles: every simulator
 * quantity (counts, ticks, ratios) fits exactly up to 2^53, and
 * trivially-copyable values are what make the seqlock sound.
 *
 * renderPrometheus() emits the Prometheus text exposition format
 * (version 0.0.4) for scraping via the embedded stats server's
 * /metrics endpoint.
 */

#ifndef VSNOOP_SIM_METRICS_HH_
#define VSNOOP_SIM_METRICS_HH_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vsnoop
{

/** Prometheus metric kind (the TYPE line). */
enum class MetricKind : std::uint8_t
{
    Counter,
    Gauge,
};

/** One name="value" pair attached to a series. */
using MetricLabel = std::pair<std::string, std::string>;

/**
 * A registry of named metric series with seqlock'd snapshot
 * publication.  See the file comment for the threading contract.
 */
class MetricsRegistry
{
  public:
    using Id = std::size_t;

    /**
     * A consistent point-in-time copy of every series value.
     * sequence increases by 2 per publish() (seqlock convention:
     * odd means a write was in flight), so pollers can detect
     * fresh data cheaply.
     */
    struct Snapshot
    {
        std::uint64_t sequence = 0;
        std::vector<double> values;
    };

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * Register one series.  Must be called before freeze().  The
     * name must match the Prometheus grammar
     * [a-zA-Z_:][a-zA-Z0-9_:]*, label names
     * [a-zA-Z_][a-zA-Z0-9_]*; violations assert.  Series sharing a
     * name (one family, many label sets) must be registered
     * contiguously with the same kind and help text.
     */
    Id add(MetricKind kind, std::string name, std::string help,
           std::vector<MetricLabel> labels = {});

    /** Shorthands for the two kinds. */
    Id addCounter(std::string name, std::string help,
                  std::vector<MetricLabel> labels = {})
    {
        return add(MetricKind::Counter, std::move(name),
                   std::move(help), std::move(labels));
    }
    Id addGauge(std::string name, std::string help,
                std::vector<MetricLabel> labels = {})
    {
        return add(MetricKind::Gauge, std::move(name),
                   std::move(help), std::move(labels));
    }

    /** End registration; set()/publish()/snapshot() become legal. */
    void freeze();
    bool frozen() const { return frozen_; }

    std::size_t size() const { return meta_.size(); }
    const std::string &name(Id id) const { return meta_.at(id).name; }

    /**
     * Stage a new value for one series (relaxed atomic store; any
     * thread, one writer per series).  Not visible to readers until
     * the next publish().
     */
    void set(Id id, double value);

    /** Staged value of one series (relaxed load). */
    double value(Id id) const;

    /**
     * Copy the staging array into the published snapshot under the
     * seqlock.  Exactly one thread may call publish() at a time
     * (the publisher role); it never blocks on readers.
     */
    void publish();

    /** Number of publish() calls so far. */
    std::uint64_t publishes() const;

    /**
     * Read a consistent snapshot (retrying while a publish is in
     * flight).  Valid before the first publish(): all zeros at
     * sequence 0.
     */
    Snapshot snapshot() const;

    /**
     * Render a snapshot in the Prometheus text exposition format
     * (version 0.0.4): # HELP / # TYPE per family, one
     * name{labels} value line per series, newline-terminated.
     */
    std::string renderPrometheus(const Snapshot &snap) const;

    /** Convenience: snapshot() + renderPrometheus(). */
    std::string renderPrometheus() const { return renderPrometheus(snapshot()); }

  private:
    struct SeriesMeta
    {
        MetricKind kind;
        std::string name;
        std::string help;
        std::vector<MetricLabel> labels;
    };

    std::vector<SeriesMeta> meta_;
    bool frozen_ = false;
    /** Writer-facing values; relaxed stores from update threads. */
    std::vector<std::atomic<double>> staging_;
    /** Reader-facing seqlock'd copy, published by publish(). */
    std::vector<std::atomic<double>> published_;
    /** Seqlock sequence: odd while a publish is copying. */
    std::atomic<std::uint64_t> seq_{0};
};

/** The /metrics Content-Type for the text exposition format. */
extern const char *const kPrometheusContentType;

} // namespace vsnoop

#endif // VSNOOP_SIM_METRICS_HH_
