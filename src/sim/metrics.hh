/**
 * @file
 * Live-telemetry metrics registry.
 *
 * The simulator's statistics (sim/stats.hh) are thread-confined by
 * design: every Counter belongs to one SimSystem and is never read
 * from another thread.  Live monitoring needs the opposite — a
 * background HTTP server thread (sim/stats_server.hh) reading a
 * consistent view of values that simulation or sweep threads keep
 * updating.  MetricsRegistry bridges the two worlds without
 * perturbing the simulation:
 *
 *  - Registration happens up front, single-threaded: every series
 *    (name + label set) is added before freeze(); after freeze()
 *    the series list is immutable, so readers never see the
 *    registry resize.
 *
 *  - Updates are relaxed atomic stores into a staging array of
 *    doubles — safe from any number of writer threads as long as
 *    each series has one writer (the sweep gives every run its own
 *    series).
 *
 *  - Publication is a seqlock over a second array of doubles: one
 *    designated publisher thread calls publish(), which brackets a
 *    staging -> snapshot copy with sequence-counter increments.
 *    Readers copy the snapshot and retry if the sequence changed
 *    mid-copy, so every snapshot() result is a consistent point-in-
 *    time set.  All accesses are atomic (TSan-clean) and neither
 *    side ever blocks the other: the writer never waits for
 *    readers, and a reader only re-copies while a publish is in
 *    flight.
 *
 * The registry deliberately stores only doubles: every simulator
 * quantity (counts, ticks, ratios) fits exactly up to 2^53, and
 * trivially-copyable values are what make the seqlock sound.
 *
 * Histogram series reuse the same machinery with more slots: one
 * registered histogram occupies LatencyHistogram::kNumBuckets + 2
 * consecutive value slots ([buckets..][sum][count]) in both arrays,
 * staged as one unit by setHistogram() from a caller-locked
 * LatencyHistogram copy.  Because the staging stores and the
 * publish() copy both happen on single threads (the publisher), a
 * snapshot always carries an internally consistent histogram: the
 * finite buckets sum to at most the count and the +Inf bucket
 * equals it exactly.
 *
 * renderPrometheus() emits the Prometheus text exposition format
 * (version 0.0.4) for scraping via the embedded stats server's
 * /metrics endpoint; histograms render the conventional
 * `_bucket{le=...}` / `_sum` / `_count` triple with cumulative
 * log2 bucket edges.
 */

#ifndef VSNOOP_SIM_METRICS_HH_
#define VSNOOP_SIM_METRICS_HH_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace vsnoop
{

/** Prometheus metric kind (the TYPE line). */
enum class MetricKind : std::uint8_t
{
    Counter,
    Gauge,
    Histogram,
};

class LatencyHistogram;

/** One name="value" pair attached to a series. */
using MetricLabel = std::pair<std::string, std::string>;

/**
 * A registry of named metric series with seqlock'd snapshot
 * publication.  See the file comment for the threading contract.
 */
class MetricsRegistry
{
  public:
    using Id = std::size_t;

    /**
     * A consistent point-in-time copy of every value slot.
     * Counter/Gauge series own one slot at values[slotBase(id)];
     * a histogram owns slotCount(id) consecutive slots laid out
     * [buckets..][sum][count].  sequence increases by 2 per
     * publish() (seqlock convention: odd means a write was in
     * flight), so pollers can detect fresh data cheaply.
     */
    struct Snapshot
    {
        std::uint64_t sequence = 0;
        std::vector<double> values;
    };

    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * Register one series.  Must be called before freeze().  The
     * name must match the Prometheus grammar
     * [a-zA-Z_:][a-zA-Z0-9_:]*, label names
     * [a-zA-Z_][a-zA-Z0-9_]*; violations assert.  Series sharing a
     * name (one family, many label sets) must be registered
     * contiguously with the same kind and help text.
     */
    Id add(MetricKind kind, std::string name, std::string help,
           std::vector<MetricLabel> labels = {});

    /** Shorthands for the two kinds. */
    Id addCounter(std::string name, std::string help,
                  std::vector<MetricLabel> labels = {})
    {
        return add(MetricKind::Counter, std::move(name),
                   std::move(help), std::move(labels));
    }
    Id addGauge(std::string name, std::string help,
                std::vector<MetricLabel> labels = {})
    {
        return add(MetricKind::Gauge, std::move(name),
                   std::move(help), std::move(labels));
    }

    /**
     * Register a histogram family member.  The name is the family
     * base name; exposition appends _bucket/_sum/_count.  Stage
     * values with setHistogram(), not set().
     */
    Id addHistogram(std::string name, std::string help,
                    std::vector<MetricLabel> labels = {})
    {
        return add(MetricKind::Histogram, std::move(name),
                   std::move(help), std::move(labels));
    }

    /** End registration; set()/publish()/snapshot() become legal. */
    void freeze();
    bool frozen() const { return frozen_; }

    std::size_t size() const { return meta_.size(); }
    const std::string &name(Id id) const { return meta_.at(id).name; }

    /** First value slot of a series (== id while no histogram
     * precedes it, since Counter/Gauge series take one slot). */
    std::size_t slotBase(Id id) const { return meta_.at(id).slotBase; }
    /** Value slots a series occupies (1, or kNumBuckets + 2). */
    std::size_t slotCount(Id id) const { return meta_.at(id).slots; }

    /**
     * Stage a new value for one Counter/Gauge series (relaxed
     * atomic store; any thread, one writer per series).  Not
     * visible to readers until the next publish().  Asserts on a
     * histogram id — use setHistogram().
     */
    void set(Id id, double value);

    /** Staged value of one Counter/Gauge series (relaxed load). */
    double value(Id id) const;

    /**
     * Stage every slot of one histogram series from @p hist
     * (bucket hit counts, sum, count).  Same writer contract as
     * set(): one staging thread per series.  Pass a copy taken
     * under the owner's lock for a consistent snapshot.
     */
    void setHistogram(Id id, const LatencyHistogram &hist);

    /**
     * Copy the staging array into the published snapshot under the
     * seqlock.  Exactly one thread may call publish() at a time
     * (the publisher role); it never blocks on readers.
     */
    void publish();

    /** Number of publish() calls so far. */
    std::uint64_t publishes() const;

    /**
     * Read a consistent snapshot (retrying while a publish is in
     * flight).  Valid before the first publish(): all zeros at
     * sequence 0.
     */
    Snapshot snapshot() const;

    /**
     * Render a snapshot in the Prometheus text exposition format
     * (version 0.0.4): # HELP / # TYPE per family, one
     * name{labels} value line per series, newline-terminated.
     */
    std::string renderPrometheus(const Snapshot &snap) const;

    /** Convenience: snapshot() + renderPrometheus(). */
    std::string renderPrometheus() const { return renderPrometheus(snapshot()); }

  private:
    struct SeriesMeta
    {
        MetricKind kind;
        std::string name;
        std::string help;
        std::vector<MetricLabel> labels;
        /** First value slot; slots are assigned in add() order. */
        std::size_t slotBase = 0;
        /** Slots occupied: 1, or kNumBuckets + 2 for histograms. */
        std::size_t slots = 1;
    };

    std::vector<SeriesMeta> meta_;
    std::size_t totalSlots_ = 0;
    bool frozen_ = false;
    /** Writer-facing values; relaxed stores from update threads. */
    std::vector<std::atomic<double>> staging_;
    /** Reader-facing seqlock'd copy, published by publish(). */
    std::vector<std::atomic<double>> published_;
    /** Seqlock sequence: odd while a publish is copying. */
    std::atomic<std::uint64_t> seq_{0};
};

/** The /metrics Content-Type for the text exposition format. */
extern const char *const kPrometheusContentType;

/**
 * Register the conventional build-provenance gauge: a
 * `vsnoop_build_info` series whose value is always 1 with
 * version/git/compiler/build_type labels from sim/version.hh.
 * Call before freeze(); the caller must set(id, 1.0) after.
 */
MetricsRegistry::Id registerBuildInfo(MetricsRegistry &registry);

} // namespace vsnoop

#endif // VSNOOP_SIM_METRICS_HH_
