/**
 * @file
 * Plain-text table rendering for benchmark and example output.
 *
 * The benchmark harness reproduces the paper's tables and figures as
 * aligned text tables; TextTable handles column sizing, alignment
 * and numeric formatting so every bench prints consistently.
 */

#ifndef VSNOOP_SIM_TABLE_HH_
#define VSNOOP_SIM_TABLE_HH_

#include <string>
#include <vector>

namespace vsnoop
{

/**
 * A simple column-aligned text table.
 */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a fully formed row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Begin building a row cell by cell. */
    TextTable &row();

    /** Append a string cell to the row under construction. */
    TextTable &cell(const std::string &value);

    /** Append a numeric cell with fixed decimals. */
    TextTable &cell(double value, int decimals = 2);

    /** Append an integer cell. */
    TextTable &cell(std::uint64_t value);

    /** Render the table, including a separator under the header. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed decimal places. */
std::string formatFixed(double value, int decimals = 2);

/** Format a ratio as a percentage string, e.g. 0.638 -> "63.8". */
std::string formatPercent(double ratio, int decimals = 1);

} // namespace vsnoop

#endif // VSNOOP_SIM_TABLE_HH_
