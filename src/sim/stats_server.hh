/**
 * @file
 * Embedded stats server: a small blocking HTTP/1.1 endpoint on a
 * background accept thread plus a fixed pool of connection workers.
 *
 * vsnoopsim and vsnoopsweep expose their live telemetry
 * (sim/metrics.hh snapshots, sweep progress) over plain HTTP so
 * standard tooling — curl, Prometheus, the vsnooptop dashboard —
 * can watch a running simulation, and vsnoopserve builds its job
 * API (src/service) on the same loop.  The server is deliberately
 * minimal: HTTP/1.1 with Connection: close, no TLS, no keep-alive.
 * A telemetry scrape costs a serving thread a snapshot copy and a
 * few syscalls; the simulation threads never block on it, so run
 * output stays byte-identical with the server on or off.
 *
 * Connections are handled by a small worker pool (setWorkers()),
 * so one slow or stalled client occupies one worker — never the
 * accept loop — and every connection carries a read timeout
 * (setReadTimeoutMs()): a client that stalls mid-request is
 * dropped with 408 instead of wedging a worker forever.  Request
 * bodies are bounded by setMaxBodyBytes(); oversized bodies are
 * rejected with 413 and malformed requests with 400, both with a
 * correct Content-Length so well-behaved clients can resync.
 *
 * Two route flavors:
 *  - route(path, fn): exact-path GET handler returning a buffered
 *    body (the original telemetry surface).
 *  - routePrefix(method, prefix, fn): method + path-prefix handler
 *    receiving the parsed HttpRequest (method, path, query, body).
 *    A handler may return a streaming response (HttpResponse::
 *    stream), which the server transfers chunked — this is how
 *    GET /jobs/<id>/results streams JSONL while a job still runs.
 *
 * Routes are registered before start() and immutable afterwards,
 * so workers read them without locks.  start() binds "host:port"
 * (IPv4 dotted quad; port 0 picks an ephemeral port — read the
 * result back with port()/address()).  stop() shuts the listening
 * socket down and joins every thread; the destructor calls it.
 *
 * Observability: every request carries a request id — the client's
 * X-Request-Id header when present, otherwise server-generated —
 * which is echoed back as an X-Request-Id response header, handed
 * to prefix handlers via HttpRequest::requestId, and stamped on
 * the structured access log record (sim/slog.hh) the server emits
 * per response: {"msg":"http_access","method","path","status",
 * "bytes","dur_us","request_id"}.  The error paths (400/408/413)
 * log and echo ids too.  registerMetrics()/stageMetrics() export
 * per-route request-latency histograms and client-error counters
 * through a MetricsRegistry (see those methods).
 */

#ifndef VSNOOP_SIM_STATS_SERVER_HH_
#define VSNOOP_SIM_STATS_SERVER_HH_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "sim/metrics.hh"
#include "sim/stats.hh"

namespace vsnoop
{

/** One parsed HTTP request as seen by a prefix-route handler. */
struct HttpRequest
{
    std::string method;
    /** Path with the query string stripped. */
    std::string path;
    /** Query string after '?' (possibly empty). */
    std::string query;
    std::string body;
    /**
     * The request's correlation id: the client's X-Request-Id
     * header when sent, a server-generated one otherwise.  Echoed
     * in the response headers and the access log; handlers thread
     * it into whatever work the request starts.
     */
    std::string requestId;
};

/**
 * Writes one piece of a chunked response; returns false once the
 * client is gone (the handler should stop producing).
 */
using ChunkWriter = std::function<bool(std::string_view)>;

/**
 * One HTTP response.  When @p stream is set the status and content
 * type are sent with Transfer-Encoding: chunked, @p body is
 * ignored, and the handler's stream function produces the payload
 * through a ChunkWriter on the serving thread.
 */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
    std::function<void(const ChunkWriter &)> stream;
};

/**
 * The blocking HTTP/1.1 stats endpoint.  See the file comment.
 */
class StatsServer
{
  public:
    using Handler = std::function<HttpResponse()>;
    using RequestHandler =
        std::function<HttpResponse(const HttpRequest &)>;

    StatsServer() = default;
    ~StatsServer();

    StatsServer(const StatsServer &) = delete;
    StatsServer &operator=(const StatsServer &) = delete;

    /**
     * Register a handler for an exact GET path ("/metrics").  Must
     * be called before start().  Handlers run on a worker thread;
     * they must only touch thread-safe state (registry snapshots,
     * heartbeat atomics).
     */
    void route(std::string path, Handler handler);

    /**
     * Register a handler for every @p method request whose path
     * starts with @p prefix ("POST" + "/jobs" matches /jobs and
     * /jobs/7/results).  Longest matching prefix wins; exact GET
     * routes are consulted first.  Must be called before start().
     */
    void routePrefix(std::string method, std::string prefix,
                     RequestHandler handler);

    /** @{ Serving knobs; must be set before start(). */
    /** Per-connection socket read/write timeout (default 5000). */
    void setReadTimeoutMs(int ms);
    /** Largest accepted request body (default 1 MiB; 413 beyond). */
    void setMaxBodyBytes(std::size_t bytes);
    /** Connection worker threads (default 4, minimum 1). */
    void setWorkers(unsigned workers);
    /** @} */

    /**
     * Bind @p addr ("host:port", e.g. "127.0.0.1:9090"; port 0 for
     * ephemeral) and start serving on background threads.  Returns
     * false and sets @p error on parse/bind failure.
     */
    bool start(const std::string &addr, std::string *error = nullptr);

    bool running() const { return listenFd_ >= 0; }

    /** Actual bound port (after start(); resolves port 0). */
    std::uint16_t port() const { return port_; }

    /** "host:port" with the actual bound port. */
    std::string address() const;

    /** Requests served so far (any status). */
    std::uint64_t requestsServed() const
    {
        return requests_.load(std::memory_order_relaxed);
    }

    /** Responses sent with one of the client-error statuses. */
    std::uint64_t clientErrors(int status) const;

    /**
     * Register the server's telemetry with @p registry (call after
     * every route is registered, before registry.freeze()):
     * vsnoop_http_requests_total, vsnoop_http_responses_total
     * {code="400"|"408"|"413"}, and one
     * vsnoop_http_request_duration_us histogram per route (labeled
     * route="GET /metrics"-style; unmatched/early-error requests
     * land in route="other").
     */
    void registerMetrics(MetricsRegistry &registry);

    /**
     * Stage current values into @p registry (publisher thread only,
     * paired with registry.publish()).  No-op until
     * registerMetrics() ran.
     */
    void stageMetrics(MetricsRegistry &registry) const;

    /** Stop accepting, join every thread, close the socket. */
    void stop();

  private:
    struct PrefixRoute
    {
        std::string method;
        std::string prefix;
        RequestHandler handler;
    };

    /** Latency sink for one route; sampled by serving workers. */
    struct RouteLatency
    {
        std::string key;
        mutable std::mutex mutex;
        LatencyHistogram hist;
    };

    void acceptLoop();
    void workerLoop();
    void handleConnection(int fd);
    std::string nextRequestId();
    void recordAccess(const std::string &method,
                      const std::string &path,
                      const std::string &requestId, int status,
                      std::size_t bytes, std::uint64_t durUs,
                      std::size_t routeIndex);

    std::vector<std::pair<std::string, Handler>> routes_;
    std::vector<PrefixRoute> prefixRoutes_;
    std::string host_;
    std::uint16_t port_ = 0;
    int listenFd_ = -1;
    int readTimeoutMs_ = 5000;
    std::size_t maxBodyBytes_ = 1u << 20;
    unsigned numWorkers_ = 4;
    std::thread acceptThread_;
    std::vector<std::thread> workers_;
    /** Accepted fds awaiting a worker; guarded by queueMutex_. */
    std::deque<int> pending_;
    std::mutex queueMutex_;
    std::condition_variable queueCv_;
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> requests_{0};

    /** Request-id generation: process-start epoch ms + a counter. */
    std::uint64_t idEpochMs_ = 0;
    std::atomic<std::uint64_t> idCounter_{0};

    /** Client-error response counts (tracked even unregistered). */
    std::atomic<std::uint64_t> resp400_{0};
    std::atomic<std::uint64_t> resp408_{0};
    std::atomic<std::uint64_t> resp413_{0};

    /** Per-route latency: [exact routes][prefix routes]["other"].
     * Built by registerMetrics(); empty means metrics are off. */
    std::vector<std::unique_ptr<RouteLatency>> routeLatency_;
    std::vector<MetricsRegistry::Id> routeLatencyIds_;
    MetricsRegistry::Id requestsTotalId_ = 0;
    MetricsRegistry::Id resp400Id_ = 0;
    MetricsRegistry::Id resp408Id_ = 0;
    MetricsRegistry::Id resp413Id_ = 0;
    bool metricsRegistered_ = false;
};

/** Status line and decoded body of one client-side HTTP exchange. */
struct HttpReply
{
    int status = 0;
    std::string body;
    /** The server-echoed X-Request-Id header (empty if absent). */
    std::string requestId;
};

/**
 * Minimal blocking HTTP/1.1 client (the other half of the stats
 * server; used by vsnooptop, vsnoopload, vsnoopsweep --submit and
 * the tests).  Sends @p method to http://addr/path with @p body
 * (Content-Length framed) and returns the status and the decoded
 * response body — chunked transfer encoding is reassembled.
 * Returns nullopt with @p error set only on transport or protocol
 * failure; HTTP error statuses are returned to the caller.  A
 * non-empty @p requestId is sent as X-Request-Id so the exchange
 * can be correlated with the server's access log and job spans;
 * the server's echoed id comes back in HttpReply::requestId either
 * way.
 */
std::optional<HttpReply> httpRequest(const std::string &addr,
                                     const std::string &method,
                                     const std::string &path,
                                     const std::string &body = "",
                                     const std::string &contentType =
                                         "application/json",
                                     std::string *error = nullptr,
                                     int timeoutMs = 5000,
                                     const std::string &requestId = "");

/**
 * Convenience GET: body on a 200, nullopt with @p error set on any
 * transport failure or non-200 status.
 */
std::optional<std::string> httpGet(const std::string &addr,
                                   const std::string &path,
                                   std::string *error = nullptr,
                                   int timeoutMs = 5000);

} // namespace vsnoop

#endif // VSNOOP_SIM_STATS_SERVER_HH_
