/**
 * @file
 * Embedded stats server: a tiny blocking HTTP/1.1 endpoint on a
 * background thread.
 *
 * vsnoopsim and vsnoopsweep expose their live telemetry
 * (sim/metrics.hh snapshots, sweep progress) over plain HTTP so
 * standard tooling — curl, Prometheus, the vsnooptop dashboard —
 * can watch a running simulation.  The server is deliberately
 * minimal: GET only, one short-lived connection at a time,
 * Connection: close, no TLS, no keep-alive.  A scrape costs the
 * serving thread a snapshot copy and a few syscalls; the simulation
 * threads never block on it, so run output stays byte-identical
 * with the server on or off.
 *
 * Routes are registered before start() and immutable afterwards, so
 * the accept loop reads them without locks.  start() binds
 * "host:port" (IPv4 dotted quad; port 0 picks an ephemeral port —
 * read the result back with port()/address()).  stop() shuts the
 * listening socket down and joins the thread; the destructor calls
 * it.
 */

#ifndef VSNOOP_SIM_STATS_SERVER_HH_
#define VSNOOP_SIM_STATS_SERVER_HH_

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace vsnoop
{

/** One HTTP response: status, content type, body. */
struct HttpResponse
{
    int status = 200;
    std::string contentType = "text/plain; charset=utf-8";
    std::string body;
};

/**
 * The blocking HTTP/1.1 stats endpoint.  See the file comment.
 */
class StatsServer
{
  public:
    using Handler = std::function<HttpResponse()>;

    StatsServer() = default;
    ~StatsServer();

    StatsServer(const StatsServer &) = delete;
    StatsServer &operator=(const StatsServer &) = delete;

    /**
     * Register a handler for an exact path ("/metrics").  Must be
     * called before start().  Handlers run on the server thread;
     * they must only touch thread-safe state (registry snapshots,
     * heartbeat atomics).
     */
    void route(std::string path, Handler handler);

    /**
     * Bind @p addr ("host:port", e.g. "127.0.0.1:9090"; port 0 for
     * ephemeral) and start serving on a background thread.  Returns
     * false and sets @p error on parse/bind failure.
     */
    bool start(const std::string &addr, std::string *error = nullptr);

    bool running() const { return listenFd_ >= 0; }

    /** Actual bound port (after start(); resolves port 0). */
    std::uint16_t port() const { return port_; }

    /** "host:port" with the actual bound port. */
    std::string address() const;

    /** Requests served so far (any status). */
    std::uint64_t requestsServed() const
    {
        return requests_.load(std::memory_order_relaxed);
    }

    /** Stop accepting, join the server thread, close the socket. */
    void stop();

  private:
    void serveLoop();
    void handleConnection(int fd);

    std::vector<std::pair<std::string, Handler>> routes_;
    std::string host_;
    std::uint16_t port_ = 0;
    int listenFd_ = -1;
    std::thread thread_;
    std::atomic<bool> stopping_{false};
    std::atomic<std::uint64_t> requests_{0};
};

/**
 * Minimal blocking HTTP/1.1 GET client (the other half of the
 * stats server; used by vsnooptop and the tests).  Fetches
 * http://addr/path and returns the body on a 200, or nullopt with
 * @p error set on connect/protocol/status failure.
 */
std::optional<std::string> httpGet(const std::string &addr,
                                   const std::string &path,
                                   std::string *error = nullptr,
                                   int timeoutMs = 5000);

} // namespace vsnoop

#endif // VSNOOP_SIM_STATS_SERVER_HH_
