#include "sim/metrics.hh"

#include <charconv>
#include <cmath>

#include "sim/logging.hh"

namespace vsnoop
{

const char *const kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

namespace
{

bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_' || c == ':';
    };
    if (!head(name[0]))
        return false;
    for (char c : name) {
        if (!head(c) && !(c >= '0' && c <= '9'))
            return false;
    }
    return true;
}

bool
validLabelName(const std::string &name)
{
    // Like a metric name but without ':' (reserved for recording
    // rules on the Prometheus side).
    return validMetricName(name) &&
           name.find(':') == std::string::npos;
}

/** Escape a label value: backslash, double quote, newline. */
std::string
escapeLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

/**
 * Shortest-round-trip value formatting, mirroring the JSON
 * writer's determinism contract: equal doubles always render the
 * same bytes.  Non-finite values use the exposition format's
 * spellings.
 */
std::string
formatValue(double value)
{
    if (std::isnan(value))
        return "NaN";
    if (std::isinf(value))
        return value > 0 ? "+Inf" : "-Inf";
    char buf[64];
    auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
    vsnoop_assert(ec == std::errc(), "to_chars failed for a double");
    return std::string(buf, end);
}

const char *
kindName(MetricKind kind)
{
    return kind == MetricKind::Counter ? "counter" : "gauge";
}

} // namespace

MetricsRegistry::Id
MetricsRegistry::add(MetricKind kind, std::string name, std::string help,
                     std::vector<MetricLabel> labels)
{
    vsnoop_assert(!frozen_,
                  "metrics registry is frozen; register every series "
                  "before freeze()");
    vsnoop_assert(validMetricName(name),
                  "invalid Prometheus metric name '", name, "'");
    for (const MetricLabel &label : labels)
        vsnoop_assert(validLabelName(label.first),
                      "invalid Prometheus label name '", label.first,
                      "' on metric '", name, "'");
    // Families must be contiguous so HELP/TYPE can head each block;
    // a same-name series later in the list with different metadata
    // would silently emit a second family.
    for (const SeriesMeta &m : meta_) {
        if (m.name != name)
            continue;
        vsnoop_assert(m.kind == kind && m.help == help,
                      "metric family '", name,
                      "' re-registered with different kind or help");
        vsnoop_assert(meta_.back().name == name,
                      "metric family '", name,
                      "' must be registered contiguously");
    }
    meta_.push_back({kind, std::move(name), std::move(help),
                     std::move(labels)});
    return meta_.size() - 1;
}

void
MetricsRegistry::freeze()
{
    vsnoop_assert(!frozen_, "metrics registry frozen twice");
    frozen_ = true;
    // vector<atomic<double>> cannot grow, so both arrays are sized
    // exactly once here; C++20 value-initializes the atomics to 0.
    staging_ = std::vector<std::atomic<double>>(meta_.size());
    published_ = std::vector<std::atomic<double>>(meta_.size());
}

void
MetricsRegistry::set(Id id, double value)
{
    vsnoop_assert(frozen_, "set() before freeze()");
    staging_.at(id).store(value, std::memory_order_relaxed);
}

double
MetricsRegistry::value(Id id) const
{
    vsnoop_assert(frozen_, "value() before freeze()");
    return staging_.at(id).load(std::memory_order_relaxed);
}

void
MetricsRegistry::publish()
{
    vsnoop_assert(frozen_, "publish() before freeze()");
    // Seqlock write side (Boehm, "Can seqlocks get along with
    // programming language memory models?"): odd sequence brackets
    // the copy; the release fence orders the sequence bump before
    // the value stores, and the release store publishes them.
    std::uint64_t s = seq_.load(std::memory_order_relaxed);
    seq_.store(s + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    for (std::size_t i = 0; i < staging_.size(); ++i)
        published_[i].store(
            staging_[i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
    seq_.store(s + 2, std::memory_order_release);
}

std::uint64_t
MetricsRegistry::publishes() const
{
    return seq_.load(std::memory_order_acquire) / 2;
}

MetricsRegistry::Snapshot
MetricsRegistry::snapshot() const
{
    vsnoop_assert(frozen_, "snapshot() before freeze()");
    Snapshot snap;
    snap.values.resize(published_.size());
    for (;;) {
        std::uint64_t s1 = seq_.load(std::memory_order_acquire);
        if (s1 & 1)
            continue; // publish in flight; re-read the sequence
        for (std::size_t i = 0; i < published_.size(); ++i)
            snap.values[i] =
                published_[i].load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (seq_.load(std::memory_order_relaxed) == s1) {
            snap.sequence = s1;
            return snap;
        }
    }
}

std::string
MetricsRegistry::renderPrometheus(const Snapshot &snap) const
{
    vsnoop_assert(snap.values.size() == meta_.size(),
                  "snapshot size does not match the registry");
    std::string out;
    out.reserve(meta_.size() * 64);
    const std::string *family = nullptr;
    for (std::size_t i = 0; i < meta_.size(); ++i) {
        const SeriesMeta &m = meta_[i];
        if (family == nullptr || *family != m.name) {
            family = &m.name;
            out += "# HELP ";
            out += m.name;
            out += ' ';
            out += m.help;
            out += "\n# TYPE ";
            out += m.name;
            out += ' ';
            out += kindName(m.kind);
            out += '\n';
        }
        out += m.name;
        if (!m.labels.empty()) {
            out += '{';
            for (std::size_t l = 0; l < m.labels.size(); ++l) {
                if (l > 0)
                    out += ',';
                out += m.labels[l].first;
                out += "=\"";
                out += escapeLabelValue(m.labels[l].second);
                out += '"';
            }
            out += '}';
        }
        out += ' ';
        out += formatValue(snap.values[i]);
        out += '\n';
    }
    return out;
}

} // namespace vsnoop
