#include "sim/metrics.hh"

#include <charconv>
#include <cmath>

#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/version.hh"

namespace vsnoop
{

const char *const kPrometheusContentType =
    "text/plain; version=0.0.4; charset=utf-8";

namespace
{

bool
validMetricName(const std::string &name)
{
    if (name.empty())
        return false;
    auto head = [](char c) {
        return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
               c == '_' || c == ':';
    };
    if (!head(name[0]))
        return false;
    for (char c : name) {
        if (!head(c) && !(c >= '0' && c <= '9'))
            return false;
    }
    return true;
}

bool
validLabelName(const std::string &name)
{
    // Like a metric name but without ':' (reserved for recording
    // rules on the Prometheus side).
    return validMetricName(name) &&
           name.find(':') == std::string::npos;
}

/** Escape a label value: backslash, double quote, newline. */
std::string
escapeLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          case '\n': out += "\\n"; break;
          default: out += c;
        }
    }
    return out;
}

/**
 * Shortest-round-trip value formatting, mirroring the JSON
 * writer's determinism contract: equal doubles always render the
 * same bytes.  Non-finite values use the exposition format's
 * spellings.
 */
std::string
formatValue(double value)
{
    if (std::isnan(value))
        return "NaN";
    if (std::isinf(value))
        return value > 0 ? "+Inf" : "-Inf";
    char buf[64];
    auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
    vsnoop_assert(ec == std::errc(), "to_chars failed for a double");
    return std::string(buf, end);
}

const char *
kindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter: return "counter";
      case MetricKind::Gauge: return "gauge";
      case MetricKind::Histogram: return "histogram";
    }
    return "untyped";
}

/** Slots a series occupies: [buckets..][sum][count] for histograms. */
std::size_t
slotsFor(MetricKind kind)
{
    return kind == MetricKind::Histogram
               ? LatencyHistogram::kNumBuckets + 2
               : 1;
}

} // namespace

MetricsRegistry::Id
MetricsRegistry::add(MetricKind kind, std::string name, std::string help,
                     std::vector<MetricLabel> labels)
{
    vsnoop_assert(!frozen_,
                  "metrics registry is frozen; register every series "
                  "before freeze()");
    vsnoop_assert(validMetricName(name),
                  "invalid Prometheus metric name '", name, "'");
    for (const MetricLabel &label : labels)
        vsnoop_assert(validLabelName(label.first),
                      "invalid Prometheus label name '", label.first,
                      "' on metric '", name, "'");
    // Families must be contiguous so HELP/TYPE can head each block;
    // a same-name series later in the list with different metadata
    // would silently emit a second family.
    for (const SeriesMeta &m : meta_) {
        if (m.name != name)
            continue;
        vsnoop_assert(m.kind == kind && m.help == help,
                      "metric family '", name,
                      "' re-registered with different kind or help");
        vsnoop_assert(meta_.back().name == name,
                      "metric family '", name,
                      "' must be registered contiguously");
    }
    meta_.push_back({kind, std::move(name), std::move(help),
                     std::move(labels), totalSlots_, slotsFor(kind)});
    totalSlots_ += meta_.back().slots;
    return meta_.size() - 1;
}

void
MetricsRegistry::freeze()
{
    vsnoop_assert(!frozen_, "metrics registry frozen twice");
    frozen_ = true;
    // vector<atomic<double>> cannot grow, so both arrays are sized
    // exactly once here; C++20 value-initializes the atomics to 0.
    staging_ = std::vector<std::atomic<double>>(totalSlots_);
    published_ = std::vector<std::atomic<double>>(totalSlots_);
}

void
MetricsRegistry::set(Id id, double value)
{
    vsnoop_assert(frozen_, "set() before freeze()");
    const SeriesMeta &m = meta_.at(id);
    vsnoop_assert(m.kind != MetricKind::Histogram,
                  "set() on histogram '", m.name,
                  "'; use setHistogram()");
    staging_[m.slotBase].store(value, std::memory_order_relaxed);
}

double
MetricsRegistry::value(Id id) const
{
    vsnoop_assert(frozen_, "value() before freeze()");
    const SeriesMeta &m = meta_.at(id);
    vsnoop_assert(m.kind != MetricKind::Histogram,
                  "value() on histogram '", m.name, "'");
    return staging_[m.slotBase].load(std::memory_order_relaxed);
}

void
MetricsRegistry::setHistogram(Id id, const LatencyHistogram &hist)
{
    vsnoop_assert(frozen_, "setHistogram() before freeze()");
    const SeriesMeta &m = meta_.at(id);
    vsnoop_assert(m.kind == MetricKind::Histogram,
                  "setHistogram() on non-histogram '", m.name, "'");
    std::size_t base = m.slotBase;
    for (std::size_t i = 0; i < LatencyHistogram::kNumBuckets; ++i)
        staging_[base + i].store(
            static_cast<double>(hist.bucketHits(i)),
            std::memory_order_relaxed);
    staging_[base + LatencyHistogram::kNumBuckets].store(
        static_cast<double>(hist.sum()), std::memory_order_relaxed);
    staging_[base + LatencyHistogram::kNumBuckets + 1].store(
        static_cast<double>(hist.count()), std::memory_order_relaxed);
}

void
MetricsRegistry::publish()
{
    vsnoop_assert(frozen_, "publish() before freeze()");
    // Seqlock write side (Boehm, "Can seqlocks get along with
    // programming language memory models?"): odd sequence brackets
    // the copy; the release fence orders the sequence bump before
    // the value stores, and the release store publishes them.
    std::uint64_t s = seq_.load(std::memory_order_relaxed);
    seq_.store(s + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    for (std::size_t i = 0; i < staging_.size(); ++i)
        published_[i].store(
            staging_[i].load(std::memory_order_relaxed),
            std::memory_order_relaxed);
    seq_.store(s + 2, std::memory_order_release);
}

std::uint64_t
MetricsRegistry::publishes() const
{
    return seq_.load(std::memory_order_acquire) / 2;
}

MetricsRegistry::Snapshot
MetricsRegistry::snapshot() const
{
    vsnoop_assert(frozen_, "snapshot() before freeze()");
    Snapshot snap;
    snap.values.resize(published_.size());
    for (;;) {
        std::uint64_t s1 = seq_.load(std::memory_order_acquire);
        if (s1 & 1)
            continue; // publish in flight; re-read the sequence
        for (std::size_t i = 0; i < published_.size(); ++i)
            snap.values[i] =
                published_[i].load(std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_acquire);
        if (seq_.load(std::memory_order_relaxed) == s1) {
            snap.sequence = s1;
            return snap;
        }
    }
}

std::string
MetricsRegistry::renderPrometheus(const Snapshot &snap) const
{
    vsnoop_assert(snap.values.size() == totalSlots_,
                  "snapshot size does not match the registry");
    std::string out;
    out.reserve(totalSlots_ * 32);

    // Append "{a="x",b="y"}" (or nothing), with an optional extra
    // label appended after the registered ones (the le bound).
    auto labelBlock = [&out](const std::vector<MetricLabel> &labels,
                             const char *extraKey,
                             const std::string &extraValue) {
        if (labels.empty() && extraKey == nullptr)
            return;
        out += '{';
        for (std::size_t l = 0; l < labels.size(); ++l) {
            if (l > 0)
                out += ',';
            out += labels[l].first;
            out += "=\"";
            out += escapeLabelValue(labels[l].second);
            out += '"';
        }
        if (extraKey != nullptr) {
            if (!labels.empty())
                out += ',';
            out += extraKey;
            out += "=\"";
            out += extraValue;
            out += '"';
        }
        out += '}';
    };

    const std::string *family = nullptr;
    for (std::size_t i = 0; i < meta_.size(); ++i) {
        const SeriesMeta &m = meta_[i];
        if (family == nullptr || *family != m.name) {
            family = &m.name;
            out += "# HELP ";
            out += m.name;
            out += ' ';
            out += m.help;
            out += "\n# TYPE ";
            out += m.name;
            out += ' ';
            out += kindName(m.kind);
            out += '\n';
        }
        if (m.kind != MetricKind::Histogram) {
            out += m.name;
            labelBlock(m.labels, nullptr, std::string());
            out += ' ';
            out += formatValue(snap.values[m.slotBase]);
            out += '\n';
            continue;
        }

        // Histogram: cumulative _bucket lines over the log2 edges,
        // then _sum and _count.  The top LatencyHistogram bucket
        // clamps, so its nominal edge is not a true upper bound —
        // it is folded into le="+Inf" (== _count) instead of
        // claiming a finite bound it does not honor.
        constexpr std::size_t buckets = LatencyHistogram::kNumBuckets;
        double sum = snap.values[m.slotBase + buckets];
        double count = snap.values[m.slotBase + buckets + 1];
        double cumulative = 0.0;
        for (std::size_t b = 0; b + 1 < buckets; ++b) {
            cumulative += snap.values[m.slotBase + b];
            out += m.name;
            out += "_bucket";
            labelBlock(m.labels, "le",
                       formatValue(static_cast<double>(
                           LatencyHistogram::bucketUpperEdge(b))));
            out += ' ';
            out += formatValue(cumulative);
            out += '\n';
        }
        out += m.name;
        out += "_bucket";
        labelBlock(m.labels, "le", "+Inf");
        out += ' ';
        out += formatValue(count);
        out += '\n';
        out += m.name;
        out += "_sum";
        labelBlock(m.labels, nullptr, std::string());
        out += ' ';
        out += formatValue(sum);
        out += '\n';
        out += m.name;
        out += "_count";
        labelBlock(m.labels, nullptr, std::string());
        out += ' ';
        out += formatValue(count);
        out += '\n';
    }
    return out;
}

MetricsRegistry::Id
registerBuildInfo(MetricsRegistry &registry)
{
    return registry.addGauge(
        "vsnoop_build_info",
        "Build provenance; the value is always 1.",
        {{"version", toolVersion()},
         {"git", gitDescribe()},
         {"compiler", compilerId()},
         {"build_type", buildType()}});
}

} // namespace vsnoop
