/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the simulator (workload generators,
 * the scheduler's victim selection, replacement tie-breaks) draws
 * from an explicitly seeded Rng so that runs are bit-reproducible.
 * The generator is PCG32 (O'Neill, 2014): a 64-bit LCG state with an
 * output permutation; small, fast, and statistically solid for
 * simulation purposes.
 */

#ifndef VSNOOP_SIM_RNG_HH_
#define VSNOOP_SIM_RNG_HH_

#include <cstdint>

#include "sim/logging.hh"

namespace vsnoop
{

/**
 * PCG32 pseudo-random generator with convenience draw helpers.
 */
class Rng
{
  public:
    /**
     * Construct a generator.
     *
     * @param seed Initial state seed.
     * @param stream Stream selector; generators with different
     *        streams produce uncorrelated sequences even when the
     *        seed matches.
     */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        reseed(seed, stream);
    }

    /** Re-initialize the state, as if freshly constructed. */
    void
    reseed(std::uint64_t seed, std::uint64_t stream = 1)
    {
        state_ = 0;
        inc_ = (stream << 1U) | 1U;
        next32();
        state_ += seed;
        next32();
    }

    /** Draw 32 uniformly distributed bits. */
    std::uint32_t
    next32()
    {
        std::uint64_t old = state_;
        state_ = old * 6364136223846793005ULL + inc_;
        auto xorshifted =
            static_cast<std::uint32_t>(((old >> 18U) ^ old) >> 27U);
        auto rot = static_cast<std::uint32_t>(old >> 59U);
        return (xorshifted >> rot) | (xorshifted << ((32 - rot) & 31U));
    }

    /** Draw 64 uniformly distributed bits. */
    std::uint64_t
    next64()
    {
        return (static_cast<std::uint64_t>(next32()) << 32U) | next32();
    }

    /**
     * Draw an integer uniformly from [0, bound).
     *
     * Uses Lemire's multiply-then-reject method to avoid modulo bias.
     * @param bound Exclusive upper bound; must be nonzero.
     */
    std::uint32_t
    below(std::uint32_t bound)
    {
        vsnoop_assert(bound > 0, "Rng::below requires a positive bound");
        std::uint64_t m =
            static_cast<std::uint64_t>(next32()) * bound;
        auto low = static_cast<std::uint32_t>(m);
        if (low < bound) {
            std::uint32_t threshold = -bound % bound;
            while (low < threshold) {
                m = static_cast<std::uint64_t>(next32()) * bound;
                low = static_cast<std::uint32_t>(m);
            }
        }
        return static_cast<std::uint32_t>(m >> 32U);
    }

    /** Draw an integer uniformly from [lo, hi] inclusive. */
    std::uint32_t
    between(std::uint32_t lo, std::uint32_t hi)
    {
        vsnoop_assert(lo <= hi, "Rng::between requires lo <= hi");
        return lo + below(hi - lo + 1);
    }

    /** Draw a double uniformly from [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next32()) * (1.0 / 4294967296.0);
    }

    /** Return true with the given probability (clamped to [0,1]). */
    bool
    chance(double probability)
    {
        if (probability <= 0.0)
            return false;
        if (probability >= 1.0)
            return true;
        return uniform() < probability;
    }

    /**
     * Draw from a geometric distribution: the number of failures
     * before the first success with the given per-trial probability.
     * Used to fast-forward over cache-hit runs.
     */
    std::uint64_t
    geometric(double success_probability);

    /**
     * Draw from an approximately Zipf-like distribution over
     * [0, n): item 0 is the hottest.  Implemented by rejection over
     * a bounded harmonic weight; used to give workload working sets
     * realistic reuse skew.
     *
     * @param n Number of items.
     * @param skew Exponent; 0 gives uniform, larger values
     *        concentrate mass on low indices.
     */
    std::uint32_t
    zipf(std::uint32_t n, double skew);

  private:
    std::uint64_t state_ = 0;
    std::uint64_t inc_ = 0;
};

} // namespace vsnoop

#endif // VSNOOP_SIM_RNG_HH_
