/**
 * @file
 * Small-buffer move-only callable.
 *
 * The simulator's hot paths package work as one-shot callbacks: the
 * EventQueue wraps every scheduleFn() in a callable, and each memory
 * access carries a completion callback through the MSHR.
 * std::function's inline buffer (16 bytes on libstdc++) is too small
 * for the captures these paths use — a controller pointer plus a
 * 32-40-byte message — so every miss costs several heap round trips.
 *
 * SmallFn is the replacement: a move-only callable with a 56-byte
 * inline buffer (one cache line total including the operations
 * pointer) and a heap fallback for oversized or throwing-move
 * captures.  Dispatch is two loads and an indirect call — no virtual
 * destructor, no RTTI, no allocation on the hot path.
 *
 * Determinism note (see DESIGN.md): SmallFn only changes *where* a
 * callable's captures live, never when it runs; simulation outputs
 * are unaffected by the inline/heap placement decision.
 */

#ifndef VSNOOP_SIM_SMALL_FN_HH_
#define VSNOOP_SIM_SMALL_FN_HH_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace vsnoop
{

template <typename Signature>
class SmallFn; // undefined; see the R(Args...) specialization

/**
 * Move-only callable with inline storage for small captures.
 */
template <typename R, typename... Args>
class SmallFn<R(Args...)>
{
  public:
    /** Inline capture capacity; larger callables go to the heap. */
    static constexpr std::size_t kInlineBytes = 56;

    SmallFn() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFn> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    SmallFn(F &&fn) // NOLINT: implicit like std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t) &&
                      std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void *>(storage_))
                Fn(std::forward<F>(fn));
            ops_ = &kInlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn **>(storage_) =
                new Fn(std::forward<F>(fn));
            ops_ = &kHeapOps<Fn>;
        }
    }

    SmallFn(SmallFn &&other) noexcept { moveFrom(other); }

    SmallFn &
    operator=(SmallFn &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    SmallFn(const SmallFn &) = delete;
    SmallFn &operator=(const SmallFn &) = delete;

    ~SmallFn() { reset(); }

    /** True when a callable is held. */
    explicit operator bool() const { return ops_ != nullptr; }

    /** Invoke the held callable; undefined when empty. */
    R
    operator()(Args... args)
    {
        return ops_->invoke(storage_, std::forward<Args>(args)...);
    }

    /** Destroy the held callable, leaving the SmallFn empty. */
    void
    reset()
    {
        if (ops_ != nullptr) {
            ops_->destroy(storage_);
            ops_ = nullptr;
        }
    }

  private:
    struct Ops
    {
        R (*invoke)(void *, Args...);
        void (*destroy)(void *);
        /** Move-construct into @p dst from @p src, destroying src. */
        void (*relocate)(void *dst, void *src);
    };

    template <typename Fn>
    static constexpr Ops kInlineOps = {
        [](void *s, Args... args) -> R {
            return (*std::launder(reinterpret_cast<Fn *>(s)))(
                std::forward<Args>(args)...);
        },
        [](void *s) { std::launder(reinterpret_cast<Fn *>(s))->~Fn(); },
        [](void *dst, void *src) {
            Fn *fn = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*fn));
            fn->~Fn();
        },
    };

    template <typename Fn>
    static constexpr Ops kHeapOps = {
        [](void *s, Args... args) -> R {
            return (**reinterpret_cast<Fn **>(s))(
                std::forward<Args>(args)...);
        },
        [](void *s) { delete *reinterpret_cast<Fn **>(s); },
        [](void *dst, void *src) {
            // Heap payloads relocate by pointer copy.
            *reinterpret_cast<Fn **>(dst) =
                *reinterpret_cast<Fn **>(src);
        },
    };

    void
    moveFrom(SmallFn &other) noexcept
    {
        ops_ = other.ops_;
        if (ops_ != nullptr) {
            ops_->relocate(storage_, other.storage_);
            other.ops_ = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
    const Ops *ops_ = nullptr;
};

} // namespace vsnoop

#endif // VSNOOP_SIM_SMALL_FN_HH_
