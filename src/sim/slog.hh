/**
 * @file
 * Structured logging: one JSON object per log line.
 *
 * The seed-era logging (sim/logging.hh) prints human-oriented
 * banners; operating the sweep service (tools/vsnoopserve) needs
 * machine-readable logs — access lines per HTTP request, cache
 * evictions, job transitions — that fleet tooling can parse, filter
 * and correlate by request id.  StructuredLog provides that surface
 * without changing a single simulation byte: log records go to
 * stderr and to an in-memory ring, never to run output.
 *
 * Every record carries a monotonic sequence number (gap-free, so a
 * consumer can detect loss), a wall-clock timestamp in epoch
 * milliseconds, a level, a message, and typed key/value fields,
 * rendered through the deterministic JsonWriter:
 *
 *   {"seq":17,"ts_ms":1754650000123,"level":"info",
 *    "msg":"http_access","method":"GET","path":"/metrics",
 *    "status":200,"bytes":4113,"dur_us":182,
 *    "request_id":"r1a2b3-4"}
 *
 * Sinks:
 *  - A bounded ring of the most recent records (default 1024; the
 *    oldest record is displaced and counted in overflowed()).  The
 *    ring backs GET /logs, which replays records as JSONL with an
 *    optional minimum-level filter.
 *  - Optionally stderr, one JSON line per record, enabled with
 *    setJsonStderr(true) (vsnoopserve does).  quietLogging()
 *    semantics are preserved: while quiet, only Error records reach
 *    stderr; the ring always captures everything.
 *
 * The legacy macros route through here: vsnoop_warn()/
 * vsnoop_inform() record a Warn/Info record in the ring and keep
 * their original "warn:"/"info:" stderr banners unless JSON stderr
 * mode replaces them.  All operations are thread-safe; records are
 * rendered and emitted under one mutex so concurrent writers never
 * interleave within a line.
 */

#ifndef VSNOOP_SIM_SLOG_HH_
#define VSNOOP_SIM_SLOG_HH_

#include <atomic>
#include <cstdint>
#include <deque>
#include <initializer_list>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vsnoop
{

enum class LogLevel : std::uint8_t
{
    Debug = 0,
    Info = 1,
    Warn = 2,
    Error = 3,
};

/** Wire token for a level ("debug", "info", "warn", "error"). */
const char *logLevelName(LogLevel level);

/** Parse a wire token back into a level; nullopt when unknown. */
std::optional<LogLevel> parseLogLevel(std::string_view token);

/**
 * One typed key/value pair attached to a record.  The constructors
 * cover every type the JSON writer renders distinctly, so a field
 * round-trips through a JSON parser with its type intact.
 */
struct LogField
{
    enum class Type : std::uint8_t
    {
        String,
        Int,
        Uint,
        Double,
        Bool,
    };

    std::string key;
    Type type = Type::String;
    std::string str;
    std::int64_t i64 = 0;
    std::uint64_t u64 = 0;
    double f64 = 0.0;
    bool flag = false;

    LogField(std::string k, std::string v)
        : key(std::move(k)), type(Type::String), str(std::move(v)) {}
    LogField(std::string k, const char *v)
        : key(std::move(k)), type(Type::String), str(v) {}
    LogField(std::string k, std::int64_t v)
        : key(std::move(k)), type(Type::Int), i64(v) {}
    LogField(std::string k, int v)
        : key(std::move(k)), type(Type::Int), i64(v) {}
    LogField(std::string k, std::uint64_t v)
        : key(std::move(k)), type(Type::Uint), u64(v) {}
    LogField(std::string k, std::uint32_t v)
        : key(std::move(k)), type(Type::Uint), u64(v) {}
    LogField(std::string k, double v)
        : key(std::move(k)), type(Type::Double), f64(v) {}
    LogField(std::string k, bool v)
        : key(std::move(k)), type(Type::Bool), flag(v) {}
};

/** One captured record: metadata plus the rendered JSON line. */
struct LogRecord
{
    std::uint64_t seq = 0;
    std::uint64_t tsMs = 0;
    LogLevel level = LogLevel::Info;
    /** The full rendered JSON object, without a trailing newline. */
    std::string json;
};

/**
 * The thread-safe leveled JSON logger.  See the file comment for
 * the sink and quiet-mode semantics.  Instantiable for tests; the
 * process-wide instance is slog().
 */
class StructuredLog
{
  public:
    explicit StructuredLog(std::size_t ringCapacity = 1024)
        : capacity_(ringCapacity == 0 ? 1 : ringCapacity) {}

    StructuredLog(const StructuredLog &) = delete;
    StructuredLog &operator=(const StructuredLog &) = delete;

    /** Record one message with optional typed fields. */
    void log(LogLevel level, std::string_view msg,
             std::initializer_list<LogField> fields)
    {
        log(level, msg,
            std::vector<LogField>(fields.begin(), fields.end()));
    }
    void log(LogLevel level, std::string_view msg,
             const std::vector<LogField> &fields = {});

    /**
     * Emit every record as one JSON line on stderr.  While off
     * (the default) records are only captured in the ring and the
     * legacy banners keep stderr.  quietLogging() still suppresses
     * sub-Error lines in either mode.
     */
    void setJsonStderr(bool on)
    {
        jsonStderr_.store(on, std::memory_order_relaxed);
    }
    bool jsonStderr() const
    {
        return jsonStderr_.load(std::memory_order_relaxed);
    }

    /**
     * Resize the ring (existing oldest records are displaced and
     * counted as overflowed when shrinking).  Capacity 0 clamps
     * to 1 — the ring always holds the latest record.
     */
    void setRingCapacity(std::size_t capacity);
    std::size_t ringCapacity() const;

    /** Records ever logged (monotonic; equals the last seq). */
    std::uint64_t recorded() const
    {
        return recorded_.load(std::memory_order_relaxed);
    }

    /** Records displaced from the ring by newer ones. */
    std::uint64_t overflowed() const
    {
        return overflowed_.load(std::memory_order_relaxed);
    }

    /**
     * The most recent records at or above @p minLevel, oldest
     * first, at most @p maxCount of the newest matches.
     */
    std::vector<LogRecord> tail(LogLevel minLevel = LogLevel::Debug,
                                std::size_t maxCount =
                                    std::size_t(-1)) const;

    /**
     * tail() rendered as JSONL: one record per line, newline after
     * each — the GET /logs payload.
     */
    std::string renderJsonl(LogLevel minLevel = LogLevel::Debug,
                            std::size_t maxCount =
                                std::size_t(-1)) const;

  private:
    mutable std::mutex mutex_;
    std::deque<LogRecord> ring_;
    std::size_t capacity_;
    std::atomic<std::uint64_t> recorded_{0};
    std::atomic<std::uint64_t> overflowed_{0};
    std::atomic<bool> jsonStderr_{false};
};

/** The process-wide logger every component shares. */
StructuredLog &slog();

/** Wall-clock milliseconds since the Unix epoch (system clock). */
std::uint64_t wallClockMs();

} // namespace vsnoop

#endif // VSNOOP_SIM_SLOG_HH_
