/**
 * @file
 * Build provenance compiled in at configure time.
 *
 * Archived run records (BENCH_*.json, sweep JSONL) outlive the
 * binaries that produced them; the meta block each record carries
 * (system/run_result.hh) answers "which build made this?" without
 * external bookkeeping.  The values come from CMake via the
 * configured version.cc (src/sim/version.cc.in): project version,
 * `git describe` at configure time ("unknown" outside a work tree),
 * compiler id + version, and the build type.
 *
 * All four are constants for a given build, so embedding them keeps
 * run JSON byte-identical across --jobs values and with monitoring
 * on or off.
 */

#ifndef VSNOOP_SIM_VERSION_HH_
#define VSNOOP_SIM_VERSION_HH_

namespace vsnoop
{

/** Project version ("0.4.0"). */
const char *toolVersion();

/** `git describe --always --dirty` at configure time. */
const char *gitDescribe();

/** Compiler id and version ("GNU 12.2.0"). */
const char *compilerId();

/** CMake build type ("RelWithDebInfo"). */
const char *buildType();

} // namespace vsnoop

#endif // VSNOOP_SIM_VERSION_HH_
