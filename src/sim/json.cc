#include "sim/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace vsnoop
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
JsonWriter::beginElement()
{
    if (stack_.empty())
        return;
    if (stack_.back() == Frame::Object) {
        vsnoop_assert(keyPending_,
                      "JSON object member needs a key() first");
        keyPending_ = false;
        return;
    }
    if (counts_.back() > 0)
        out_ += ',';
    counts_.back()++;
}

JsonWriter &
JsonWriter::beginObject()
{
    beginElement();
    out_ += '{';
    stack_.push_back(Frame::Object);
    counts_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    vsnoop_assert(!stack_.empty() && stack_.back() == Frame::Object,
                  "endObject() without a matching beginObject()");
    vsnoop_assert(!keyPending_, "dangling key() at endObject()");
    out_ += '}';
    stack_.pop_back();
    counts_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beginElement();
    out_ += '[';
    stack_.push_back(Frame::Array);
    counts_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    vsnoop_assert(!stack_.empty() && stack_.back() == Frame::Array,
                  "endArray() without a matching beginArray()");
    out_ += ']';
    stack_.pop_back();
    counts_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    vsnoop_assert(!stack_.empty() && stack_.back() == Frame::Object,
                  "key() is only valid inside an object");
    vsnoop_assert(!keyPending_, "two key() calls in a row");
    if (counts_.back() > 0)
        out_ += ',';
    counts_.back()++;
    out_ += '"';
    out_ += jsonEscape(name);
    out_ += "\":";
    keyPending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &s)
{
    beginElement();
    out_ += '"';
    out_ += jsonEscape(s);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *s)
{
    return value(std::string(s));
}

JsonWriter &
JsonWriter::value(double d)
{
    if (!std::isfinite(d))
        return null();
    beginElement();
    char buf[32];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), d);
    vsnoop_assert(ec == std::errc(), "double formatting failed");
    out_.append(buf, end);
    return *this;
}

JsonWriter &
JsonWriter::value(bool b)
{
    beginElement();
    out_ += b ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t u)
{
    beginElement();
    char buf[24];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), u);
    vsnoop_assert(ec == std::errc(), "integer formatting failed");
    out_.append(buf, end);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t i)
{
    beginElement();
    char buf[24];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), i);
    vsnoop_assert(ec == std::errc(), "integer formatting failed");
    out_.append(buf, end);
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beginElement();
    out_ += "null";
    return *this;
}

std::string
JsonWriter::str() const
{
    vsnoop_assert(stack_.empty(),
                  "JsonWriter::str() with ", stack_.size(),
                  " unclosed container(s)");
    return out_;
}

} // namespace vsnoop
