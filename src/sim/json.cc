#include "sim/json.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "sim/logging.hh"

namespace vsnoop
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

void
JsonWriter::beginElement()
{
    if (stack_.empty())
        return;
    if (stack_.back() == Frame::Object) {
        vsnoop_assert(keyPending_,
                      "JSON object member needs a key() first");
        keyPending_ = false;
        return;
    }
    if (counts_.back() > 0)
        out_ += ',';
    counts_.back()++;
}

JsonWriter &
JsonWriter::beginObject()
{
    beginElement();
    out_ += '{';
    stack_.push_back(Frame::Object);
    counts_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    vsnoop_assert(!stack_.empty() && stack_.back() == Frame::Object,
                  "endObject() without a matching beginObject()");
    vsnoop_assert(!keyPending_, "dangling key() at endObject()");
    out_ += '}';
    stack_.pop_back();
    counts_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    beginElement();
    out_ += '[';
    stack_.push_back(Frame::Array);
    counts_.push_back(0);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    vsnoop_assert(!stack_.empty() && stack_.back() == Frame::Array,
                  "endArray() without a matching beginArray()");
    out_ += ']';
    stack_.pop_back();
    counts_.pop_back();
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    vsnoop_assert(!stack_.empty() && stack_.back() == Frame::Object,
                  "key() is only valid inside an object");
    vsnoop_assert(!keyPending_, "two key() calls in a row");
    if (counts_.back() > 0)
        out_ += ',';
    counts_.back()++;
    out_ += '"';
    out_ += jsonEscape(name);
    out_ += "\":";
    keyPending_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &s)
{
    beginElement();
    out_ += '"';
    out_ += jsonEscape(s);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *s)
{
    return value(std::string(s));
}

JsonWriter &
JsonWriter::value(double d)
{
    if (!std::isfinite(d))
        return null();
    beginElement();
    char buf[32];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), d);
    vsnoop_assert(ec == std::errc(), "double formatting failed");
    out_.append(buf, end);
    return *this;
}

JsonWriter &
JsonWriter::value(bool b)
{
    beginElement();
    out_ += b ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t u)
{
    beginElement();
    char buf[24];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), u);
    vsnoop_assert(ec == std::errc(), "integer formatting failed");
    out_.append(buf, end);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t i)
{
    beginElement();
    char buf[24];
    auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), i);
    vsnoop_assert(ec == std::errc(), "integer formatting failed");
    out_.append(buf, end);
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    beginElement();
    out_ += "null";
    return *this;
}

std::string
JsonWriter::str() const
{
    vsnoop_assert(stack_.empty(),
                  "JsonWriter::str() with ", stack_.size(),
                  " unclosed container(s)");
    return out_;
}

bool
JsonValue::boolean() const
{
    vsnoop_assert(kind_ == Kind::Bool, "JsonValue is not a bool");
    return bool_;
}

double
JsonValue::number() const
{
    vsnoop_assert(kind_ == Kind::Number, "JsonValue is not a number");
    return num_;
}

const std::string &
JsonValue::string() const
{
    vsnoop_assert(kind_ == Kind::String, "JsonValue is not a string");
    return str_;
}

const std::vector<JsonValue> &
JsonValue::items() const
{
    vsnoop_assert(kind_ == Kind::Array, "JsonValue is not an array");
    return items_;
}

const std::vector<JsonValue::Member> &
JsonValue::members() const
{
    vsnoop_assert(kind_ == Kind::Object, "JsonValue is not an object");
    return members_;
}

const JsonValue *
JsonValue::find(const std::string &name) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const Member &m : members_) {
        if (m.first == name)
            return &m.second;
    }
    return nullptr;
}

double
JsonValue::numberAt(const std::string &name, double fallback) const
{
    const JsonValue *v = find(name);
    return v && v->isNumber() ? v->num_ : fallback;
}

std::string
JsonValue::stringAt(const std::string &name,
                    const std::string &fallback) const
{
    const JsonValue *v = find(name);
    return v && v->isString() ? v->str_ : fallback;
}

/**
 * Recursive-descent parser over one in-memory document.  Errors
 * abort the parse by setting failed_; every production checks it so
 * the first error's message and offset survive to the caller.
 */
class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    std::optional<JsonValue>
    run(std::string *error)
    {
        JsonValue root = parseValue(0);
        skipSpace();
        if (!failed_ && pos_ != text_.size())
            fail("trailing characters after document");
        if (failed_) {
            if (error)
                *error = error_ + " at byte " + std::to_string(errorPos_);
            return std::nullopt;
        }
        return root;
    }

  private:
    static constexpr int kMaxDepth = 64;

    void
    fail(const std::string &why)
    {
        if (!failed_) {
            failed_ = true;
            error_ = why;
            errorPos_ = pos_;
        }
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size()) {
            char c = text_[pos_];
            if (c != ' ' && c != '\t' && c != '\n' && c != '\r')
                break;
            pos_++;
        }
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            pos_++;
            return true;
        }
        return false;
    }

    bool
    consumeWord(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    JsonValue
    parseValue(int depth)
    {
        JsonValue v;
        skipSpace();
        if (failed_)
            return v;
        if (depth > kMaxDepth) {
            fail("nesting too deep");
            return v;
        }
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return v;
        }
        char c = text_[pos_];
        if (c == '{')
            return parseObject(depth);
        if (c == '[')
            return parseArray(depth);
        if (c == '"') {
            v.kind_ = JsonValue::Kind::String;
            v.str_ = parseString();
            return v;
        }
        if (consumeWord("null"))
            return v;
        if (consumeWord("true")) {
            v.kind_ = JsonValue::Kind::Bool;
            v.bool_ = true;
            return v;
        }
        if (consumeWord("false")) {
            v.kind_ = JsonValue::Kind::Bool;
            v.bool_ = false;
            return v;
        }
        if (c == '-' || (c >= '0' && c <= '9')) {
            v.kind_ = JsonValue::Kind::Number;
            v.num_ = parseNumber();
            return v;
        }
        fail(std::string("unexpected character '") + c + "'");
        return v;
    }

    JsonValue
    parseObject(int depth)
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::Object;
        consume('{');
        skipSpace();
        if (consume('}'))
            return v;
        while (!failed_) {
            skipSpace();
            if (pos_ >= text_.size() || text_[pos_] != '"') {
                fail("expected member name");
                break;
            }
            std::string name = parseString();
            skipSpace();
            if (!consume(':')) {
                fail("expected ':' after member name");
                break;
            }
            v.members_.emplace_back(std::move(name), parseValue(depth + 1));
            skipSpace();
            if (consume(','))
                continue;
            if (!consume('}'))
                fail("expected ',' or '}' in object");
            break;
        }
        return v;
    }

    JsonValue
    parseArray(int depth)
    {
        JsonValue v;
        v.kind_ = JsonValue::Kind::Array;
        consume('[');
        skipSpace();
        if (consume(']'))
            return v;
        while (!failed_) {
            v.items_.push_back(parseValue(depth + 1));
            skipSpace();
            if (consume(','))
                continue;
            if (!consume(']'))
                fail("expected ',' or ']' in array");
            break;
        }
        return v;
    }

    std::string
    parseString()
    {
        std::string out;
        consume('"');
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                break;
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    if (pos_ >= text_.size()) {
                        fail("truncated \\u escape");
                        return out;
                    }
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        fail("bad hex digit in \\u escape");
                        return out;
                    }
                }
                // UTF-8 encode the code point; surrogate pairs are
                // not combined (the writer only escapes controls,
                // so none appear in our own output).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("bad escape character");
                return out;
            }
        }
        fail("unterminated string");
        return out;
    }

    double
    parseNumber()
    {
        const char *begin = text_.data() + pos_;
        const char *end = text_.data() + text_.size();
        double d = 0.0;
        auto [rest, ec] = std::from_chars(begin, end, d);
        if (ec != std::errc() || rest == begin) {
            fail("malformed number");
            return 0.0;
        }
        pos_ += static_cast<std::size_t>(rest - begin);
        return d;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    bool failed_ = false;
    std::string error_;
    std::size_t errorPos_ = 0;
};

std::optional<JsonValue>
parseJson(std::string_view text, std::string *error)
{
    return JsonParser(text).run(error);
}

} // namespace vsnoop
