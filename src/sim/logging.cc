#include "sim/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace vsnoop
{

namespace
{
// Atomic so sweep worker threads can log while another thread
// toggles quiet mode; relaxed ordering suffices for a flag.
std::atomic<bool> quietFlag{false};
} // namespace

bool
loggingQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

void
quietLogging(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

namespace detail
{

// Each message is composed into one string and written with a
// single stream insertion: stderr writes from concurrent sweep
// workers may interleave between messages but never inside one.

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << ("panic: " + msg + "\n  at " + file + ":" +
                  std::to_string(line) + "\n")
              << std::flush;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << ("fatal: " + msg + "\n  at " + file + ":" +
                  std::to_string(line) + "\n")
              << std::flush;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (!loggingQuiet())
        std::cerr << ("warn: " + msg + "\n") << std::flush;
}

void
informImpl(const std::string &msg)
{
    if (!loggingQuiet())
        std::cerr << ("info: " + msg + "\n") << std::flush;
}

} // namespace detail

} // namespace vsnoop
