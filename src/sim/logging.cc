#include "sim/logging.hh"

#include <atomic>
#include <cstdlib>
#include <iostream>

#include "sim/slog.hh"

namespace vsnoop
{

namespace
{
// Atomic so sweep worker threads can log while another thread
// toggles quiet mode; relaxed ordering suffices for a flag.
std::atomic<bool> quietFlag{false};
} // namespace

bool
loggingQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

void
quietLogging(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

namespace detail
{

// Each message is composed into one string and written with a
// single stream insertion: stderr writes from concurrent sweep
// workers may interleave between messages but never inside one.
// warn()/inform() also record a structured copy in slog()'s ring
// (always — quiet mode only silences stderr), and when JSON stderr
// mode is on (vsnoopserve) the structured line replaces the banner.

void
panicImpl(const char *file, int line, const std::string &msg)
{
    slog().log(LogLevel::Error, msg,
               {LogField("at", std::string(file) + ":" +
                                   std::to_string(line)),
                LogField("panic", true)});
    if (!slog().jsonStderr())
        std::cerr << ("panic: " + msg + "\n  at " + file + ":" +
                      std::to_string(line) + "\n")
                  << std::flush;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    slog().log(LogLevel::Error, msg,
               {LogField("at", std::string(file) + ":" +
                                   std::to_string(line)),
                LogField("fatal", true)});
    if (!slog().jsonStderr())
        std::cerr << ("fatal: " + msg + "\n  at " + file + ":" +
                      std::to_string(line) + "\n")
                  << std::flush;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    slog().log(LogLevel::Warn, msg);
    if (!slog().jsonStderr() && !loggingQuiet())
        std::cerr << ("warn: " + msg + "\n") << std::flush;
}

void
informImpl(const std::string &msg)
{
    slog().log(LogLevel::Info, msg);
    if (!slog().jsonStderr() && !loggingQuiet())
        std::cerr << ("info: " + msg + "\n") << std::flush;
}

} // namespace detail

} // namespace vsnoop
